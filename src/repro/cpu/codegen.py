"""Generated-code tier of the fast tracer: superblocks as Python functions.

For each entry PC reached at run time, :func:`compile_superblock` walks
the static code from that address and emits one specialised Python
function covering the whole straight-line region — following direct
jumps, inlining ``JAL`` targets, and returning through ``RET`` under a
guard that checks the link register against the statically expected
return address.  Registers live in Python locals for the duration of a
superblock and spill back to the shared register file at every exit, so
the per-instruction cost is one or two local-variable operations instead
of a dispatch loop iteration.

Semantics are kept bit-identical to :class:`repro.cpu.machine.Machine`:
the same signed-64-bit wrap (inlined branchlessly), the same C-style
DIV/MOD truncation, the same fault messages at the same PCs, and the
same control-record stream.  The walk stops at vectorizable loop
headers (:attr:`CompiledProgram.stop_pcs`) so the batched stepper of
:mod:`repro.cpu.vector` always sees those loops at their header.

A superblock returns the next PC to execute; after recording a HALT it
sets the shared ``hlt`` cell (a returned ``-1`` alone is a *fault* — an
indirect jump can compute any integer, and the dispatch loop must raise
``PC out of range`` for it exactly like the interpreter).  Each
superblock consumes at most :data:`SUPERBLOCK_CAP` instructions per
call, which bounds how far past the soft budget limit the dispatch loop
can run before handing over to the scalar tail.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List

from .machine import MachineError
from .tables import CompiledProgram
from ..isa.kinds import InstrKind
from ..isa.opcodes import Op

#: Most instructions one superblock call may consume.
SUPERBLOCK_CAP = 512

_M = (1 << 64) - 1
_S = 1 << 63

_K_COND = int(InstrKind.COND)
_K_JUMP = int(InstrKind.JUMP)
_K_CALL = int(InstrKind.CALL)
_K_RETURN = int(InstrKind.RETURN)
_K_INDIRECT = int(InstrKind.INDIRECT)
_K_HALT = int(InstrKind.HALT)

_COND_PY = {
    int(Op.BEQ): "==", int(Op.BNE): "!=", int(Op.BLT): "<",
    int(Op.BGE): ">=", int(Op.BLE): "<=", int(Op.BGT): ">",
}


class _Emitter:
    """Accumulates the body of one superblock function."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.live: set = set()     # registers bound to locals
        self.written: set = set()  # locals dirty vs the register file
        self.count = 0             # instructions consumed so far
        self.n_exits = 0

    def emit(self, line: str, indent: int = 2) -> None:
        self.lines.append(" " * (4 * indent) + line)

    def read(self, r: int, indent: int = 2) -> str:
        if r == 0:
            return "0"
        name = f"r{r}"
        if r not in self.live:
            self.emit(f"{name} = R[{r}]", indent)
            self.live.add(r)
        return name

    def begin_write(self, r: int) -> str:
        """Local name for writing ``r`` (``r0`` writes are discarded)."""
        self.live.add(r)
        self.written.add(r)
        return f"r{r}"

    def spill_lines(self, indent: int) -> List[str]:
        pad = " " * (4 * indent)
        return [f"{pad}R[{n}] = r{n}" for n in sorted(self.written - {0})]

    def exit(self, result: str, indent: int = 2) -> None:
        """Spill, charge the instruction count, return ``result``."""
        self.lines.extend(self.spill_lines(indent))
        if self.count:
            self.emit(f"ctr[0] += {self.count}", indent)
        self.emit(f"return {result}", indent)
        self.n_exits += 1

    def raise_(self, message: str, indent: int = 2) -> None:
        """Spill (fault state is observable post-mortem) and raise."""
        self.lines.extend(self.spill_lines(indent))
        self.emit(f"raise MachineError({message})", indent)

    def wrap_into(self, name: str, expr: str, indent: int = 2) -> None:
        """Branchless signed-64-bit wrap of ``expr`` into ``name``."""
        self.emit(f"_v = ({expr}) & {_M}", indent)
        self.emit(f"{name} = _v - ((_v & {_S}) << 1)", indent)


def compile_superblock(cp: CompiledProgram, start: int,
                       stop_pcs: FrozenSet[int],
                       namespace: dict) -> Callable[[], int]:
    """Compile the superblock starting at ``start`` into a function.

    ``namespace`` provides the run-time objects the generated code
    closes over: ``R`` (register list), ``mem`` (numpy data memory),
    ``ap``/``ak``/``at``/``ag`` (record-list appends), ``ctr`` (the
    shared one-cell instruction counter), ``hlt`` (the one-cell halt
    flag set after a HALT records) and ``hi`` (the dict of memory words
    whose interpreter value falls outside int64 — SRL by a zero shift
    count leaves a negative operand unwrapped, and the reference
    interpreter's list memory keeps that huge value; ``mem`` then holds
    the wrapped mirror and ``hi`` the exact value loads must observe).
    """
    ops = cp.ops_l
    rds = cp.rd_l
    rs1s = cp.rs1_l
    rs2s = cp.rs2_l
    imms = cp.imm_l
    n_code = cp.n_code
    msize = cp.data_size

    e = _Emitter()
    seen = {start}
    expect_stack: List[int] = []
    pc = start

    op_add = int(Op.ADD); op_sub = int(Op.SUB); op_mul = int(Op.MUL)
    op_div = int(Op.DIV); op_mod = int(Op.MOD); op_and = int(Op.AND)
    op_or = int(Op.OR); op_xor = int(Op.XOR); op_sll = int(Op.SLL)
    op_srl = int(Op.SRL); op_slt = int(Op.SLT); op_seq = int(Op.SEQ)
    op_addi = int(Op.ADDI); op_andi = int(Op.ANDI); op_ori = int(Op.ORI)
    op_xori = int(Op.XORI); op_slli = int(Op.SLLI); op_srli = int(Op.SRLI)
    op_slti = int(Op.SLTI); op_muli = int(Op.MULI); op_li = int(Op.LI)
    op_ld = int(Op.LD); op_st = int(Op.ST)
    op_j = int(Op.J); op_jal = int(Op.JAL); op_jr = int(Op.JR)
    op_jalr = int(Op.JALR); op_ret = int(Op.RET)
    op_nop = int(Op.NOP); op_halt = int(Op.HALT)

    def continue_at(target: int) -> int:
        """Decide whether the walk may extend to ``target``.

        Returns the target when inlining continues; emits an exit and
        returns ``-1`` otherwise.
        """
        if (target in seen or target in stop_pcs
                or e.count >= SUPERBLOCK_CAP):
            e.exit(str(target))
            return -1
        if not 0 <= target < n_code:
            e.raise_(f'"PC out of range: {target}"')
            return -1
        seen.add(target)
        return target

    while True:
        if not 0 <= pc < n_code:
            e.raise_(f'"PC out of range: {pc}"')
            break
        op = ops[pc]
        rd = rds[pc]
        rs1 = rs1s[pc]
        rs2 = rs2s[pc]
        imm = imms[pc]
        e.count += 1

        if op == op_addi:
            if rd:
                a = e.read(rs1)
                name = e.begin_write(rd)
                if imm == 0:
                    e.emit(f"{name} = {a}")
                else:
                    e.wrap_into(name, f"{a} + {imm}")
        elif op == op_ld:
            a = e.read(rs1)
            e.emit(f"_a = {a} + {imm}" if imm else f"_a = {a}")
            e.emit(f"if not 0 <= _a < {msize}:")
            e.raise_(f'f"load out of range at pc={pc}: {{_a}}"', indent=3)
            if rd:
                # ``hi`` holds values outside int64 (unwrapped SRL-by-0
                # results the interpreter keeps); empty for nearly every
                # program, so the common path is one falsy check.
                name = e.begin_write(rd)
                e.emit(f"{name} = hi.get(_a) if hi else None")
                e.emit(f"if {name} is None:")
                e.emit(f"{name} = int(mem[_a])", indent=3)
        elif op == op_st:
            a = e.read(rs1)
            v = e.read(rs2)
            e.emit(f"_a = {a} + {imm}" if imm else f"_a = {a}")
            e.emit(f"if not 0 <= _a < {msize}:")
            e.raise_(f'f"store out of range at pc={pc}: {{_a}}"', indent=3)
            e.emit(f"if {-(1 << 63)} <= {v} <= {(1 << 63) - 1}:")
            e.emit(f"mem[_a] = {v}", indent=3)
            e.emit("if hi: hi.pop(_a, None)", indent=3)
            e.emit("else:")
            e.emit(f"_w = {v} & {_M}", indent=3)
            e.emit(f"mem[_a] = _w - ((_w & {_S}) << 1)", indent=3)
            e.emit(f"hi[_a] = {v}", indent=3)
        elif op in (op_add, op_sub, op_mul):
            if rd:
                a = e.read(rs1)
                b = e.read(rs2)
                sym = {op_add: "+", op_sub: "-", op_mul: "*"}[op]
                e.wrap_into(e.begin_write(rd), f"{a} {sym} {b}")
        elif op in _COND_PY:
            a = e.read(rs1)
            b = e.read(rs2)
            e.emit(f"_t = {a} {_COND_PY[op]} {b}")
            e.emit(f"ap({pc}); ak({_K_COND}); at(_t); ag({imm})")
            e.lines.extend(e.spill_lines(2))
            e.emit(f"ctr[0] += {e.count}")
            e.emit(f"return {imm} if _t else {pc + 1}")
            e.n_exits += 1
            break
        elif op == op_li:
            if rd:
                value = imm & _M
                if value & _S:
                    value -= 1 << 64
                e.emit(f"{e.begin_write(rd)} = {value}")
        elif op == op_muli:
            if rd:
                a = e.read(rs1)
                e.wrap_into(e.begin_write(rd), f"{a} * {imm}")
        elif op in (op_and, op_or, op_xor):
            if rd:
                a = e.read(rs1)
                b = e.read(rs2)
                sym = {op_and: "&", op_or: "|", op_xor: "^"}[op]
                e.emit(f"{e.begin_write(rd)} = {a} {sym} {b}")
        elif op in (op_andi, op_ori, op_xori):
            if rd:
                a = e.read(rs1)
                sym = {op_andi: "&", op_ori: "|", op_xori: "^"}[op]
                e.emit(f"{e.begin_write(rd)} = {a} {sym} {imm}")
        elif op == op_sll:
            if rd:
                a = e.read(rs1)
                b = e.read(rs2)
                e.wrap_into(e.begin_write(rd), f"{a} << ({b} & 63)")
        elif op == op_srl:
            if rd:
                a = e.read(rs1)
                b = e.read(rs2)
                e.emit(f"{e.begin_write(rd)} = "
                       f"({a} & {_M}) >> ({b} & 63)")
        elif op == op_slli:
            if rd:
                a = e.read(rs1)
                e.wrap_into(e.begin_write(rd), f"{a} << {imm & 63}")
        elif op == op_srli:
            if rd:
                a = e.read(rs1)
                e.emit(f"{e.begin_write(rd)} = ({a} & {_M}) >> {imm & 63}")
        elif op == op_slt:
            if rd:
                a = e.read(rs1)
                b = e.read(rs2)
                e.emit(f"{e.begin_write(rd)} = 1 if {a} < {b} else 0")
        elif op == op_slti:
            if rd:
                a = e.read(rs1)
                e.emit(f"{e.begin_write(rd)} = 1 if {a} < {imm} else 0")
        elif op == op_seq:
            if rd:
                a = e.read(rs1)
                b = e.read(rs2)
                e.emit(f"{e.begin_write(rd)} = 1 if {a} == {b} else 0")
        elif op in (op_div, op_mod):
            a = e.read(rs1)
            b = e.read(rs2)
            e.emit(f"if {b} == 0:")
            e.raise_(f'"division by zero at pc={pc}"', indent=3)
            e.emit(f"_q = abs({a}) // abs({b})")
            e.emit(f"if ({a} < 0) != ({b} < 0):")
            e.emit("_q = -_q", indent=3)
            if rd:
                name = e.begin_write(rd)
                if op == op_div:
                    e.wrap_into(name, "_q")
                else:
                    e.wrap_into(name, f"{a} - _q * {b}")
        elif op == op_j:
            e.emit(f"ap({pc}); ak({_K_JUMP}); at(True); ag({imm})")
            pc = continue_at(imm)
            if pc < 0:
                break
            continue
        elif op == op_jal:
            e.emit(f"ap({pc}); ak({_K_CALL}); at(True); ag({imm})")
            e.emit(f"{e.begin_write(1)} = {pc + 1}")
            expect_stack.append(pc + 1)
            pc = continue_at(imm)
            if pc < 0:
                break
            continue
        elif op in (op_jr, op_ret):
            a = e.read(rs1)
            kind = _K_RETURN if op == op_ret else _K_INDIRECT
            e.emit(f"_t = {a}")
            e.emit(f"ap({pc}); ak({kind}); at(True); ag(_t)")
            if op == op_ret and expect_stack:
                expected = expect_stack.pop()
                e.emit(f"if _t != {expected}:")
                e.lines.extend(e.spill_lines(3))
                e.emit(f"ctr[0] += {e.count}", indent=3)
                e.emit("return _t", indent=3)
                e.n_exits += 1
                pc = continue_at(expected)
                if pc < 0:
                    break
                continue
            e.exit("_t")
            break
        elif op == op_jalr:
            a = e.read(rs1)
            e.emit(f"_t = {a}")
            e.emit(f"ap({pc}); ak({_K_CALL}); at(True); ag(_t)")
            e.emit(f"{e.begin_write(1)} = {pc + 1}")
            e.exit("_t")
            break
        elif op == op_nop:
            pass
        elif op == op_halt:
            e.emit(f"ap({pc}); ak({_K_HALT}); at(False); ag({pc + 1})")
            e.emit("hlt[0] = 1")
            e.exit("-1")
            break
        else:
            e.raise_(f'"unknown opcode {op} at pc={pc}"')
            break

        pc = continue_at(pc + 1)
        if pc < 0:
            break

    body = "\n".join(e.lines) if e.lines else "        pass"
    src = (
        "def _make(R, mem, ap, ak, at, ag, ctr, hlt, hi):\n"
        "    def _sb():\n"
        f"{body}\n"
        "    return _sb\n"
    )
    glb = {"MachineError": MachineError, "abs": abs}
    exec(compile(src, f"<superblock pc={start}>", "exec"), glb)
    return glb["_make"](namespace["R"], namespace["mem"],
                        namespace["ap"], namespace["ak"],
                        namespace["at"], namespace["ag"],
                        namespace["ctr"], namespace["hlt"],
                        namespace["hi"])
