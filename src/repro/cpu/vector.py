"""Batched loop stepper: many iterations of a hot loop per numpy call.

The generated-code tier of :mod:`repro.cpu.codegen` removes dispatch
overhead but still runs one Python statement per instruction.  Most of a
workload's dynamic instructions, however, sit inside innermost loops
whose bodies are forward-branching DAGs — counted fills, stencil sweeps,
LCG chains, probe loops.  This module compiles such a loop once into a
symbolic form and then *vectorizes over the iteration axis*: one batch
evaluates N prospective iterations with a handful of numpy array
operations, emits all their control records at once, and advances the
architectural state past every iteration the closed forms cover.

How a batch stays bit-exact with the scalar interpreter:

* **Closed forms** — every loop-carried register must classify as
  invariant, affine (``x -> (a*x + c) mod 2^64``, optionally masked by a
  final ``& (2^k - 1)``; this covers counters, pointers and the LCG) or
  accumulator (``x += delta`` with an iteration-evaluable delta, closed
  by a cumulative sum).  Anything else rejects the loop, which then runs
  on the generated-code tier.  All wrap-sensitive arithmetic happens in
  ``uint64`` so numpy's silent wraparound reproduces the interpreter's
  signed 64-bit wrap; results are reinterpreted as ``int64`` views.
* **Predication** — internal forward branches become per-block lane
  masks; merge points become selects.  Because all internal edges go
  forward, address order equals execution order, so records, loads and
  stores assemble in the scalar interleaving.
* **The cut** — the batch commits only iterations ``[0, T)`` where ``T``
  is the first lane that exits the loop, faults (out-of-range access,
  division by zero — re-executed by the scalar tiers so the exception
  and its message are identical), reads memory a same-batch store may
  have written (load/store aliasing), or would exceed the instruction
  budget.  Lane ``T`` and everything after it are recomputed exactly by
  the other tiers.
* **Stores** — applied for committed lanes only, in execution order with
  an explicit keep-last deduplication, so duplicate addresses resolve
  the way sequential execution would.

Batching is adaptive but deterministic: batch sizes grow on full
batches, shrink toward the observed trip count, and loops that keep
exiting after a handful of iterations are permanently handed back to
the generated-code tier.  No wall clock, no randomness — the decision
sequence depends only on the executed program.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from .tables import CompiledProgram, LOOP_SHAPE_COND, LoopInfo
from ..isa.kinds import InstrKind
from ..isa.opcodes import Op

_M = (1 << 64) - 1
_S = 1 << 63
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_K_COND = int(InstrKind.COND)
_K_JUMP = int(InstrKind.JUMP)

_CMP = {
    int(Op.BEQ): "eq", int(Op.BNE): "ne", int(Op.BLT): "lt",
    int(Op.BGE): "ge", int(Op.BLE): "le", int(Op.BGT): "gt",
}

#: Batch-size schedule: start small, grow ×4 on full batches.
_N_START = 64
_N_MAX = 1 << 16
#: Trips below this are not worth a batch; repeated offenders back off.
_MIN_TRIP = 12
#: Header visits before the first batch attempt.
_WARMUP_VISITS = 48
#: Consecutive short/aliasing batches before the loop is handed back to
#: the generated-code tier for good.
_MAX_STRIKES = 10
#: Backoff (in header visits) added per strike before the next attempt.
_STRIKE_BACKOFF = 128
#: A stepper whose batches average fewer committed instructions than
#: this is paying more in batch overhead than the generated-code tier
#: costs outright; it hands the loop back for good.
_MIN_YIELD = 2500
#: Batches observed before the yield test applies.
_YIELD_PROBATION = 8


def _wrap(value: int) -> int:
    value &= _M
    return value - (1 << 64) if value & _S else value


# ----------------------------------------------------------------------
# Symbolic expression nodes (hash-consed tuples)
# ----------------------------------------------------------------------
# ("const", v)                  wrapped python int
# ("constb", v)                 folded branch condition (python bool)
# ("entry", r)                  register value at iteration start
# ("bin", op, a, b)             int64 ALU result
# ("cmp", op, a, b)             branch condition (bool)
# ("div", which, a, b, site)    DIV/MOD with a fault site
# ("load", addr, site)          LD with a fault site
# ("phi", ((edge, node), ...))  merge over CFG edges
#
# ``site`` indexes ``plan.fault_sites`` (which remembers the block), so
# fault predicates only count lanes that actually execute the site.


class _Reject(Exception):
    """Internal: the loop cannot be vectorized."""


class _Sym:
    """Hash-consing node builder with constant folding."""

    def __init__(self) -> None:
        self._intern: Dict[tuple, tuple] = {}
        self._info: Dict[int, Tuple[FrozenSet[int], bool]] = {}

    def mk(self, *parts) -> tuple:
        node = self._intern.get(parts)
        if node is None:
            node = parts
            self._intern[parts] = node
        return node

    def const(self, v: int) -> tuple:
        return self.mk("const", _wrap(v))

    def entry(self, r: int) -> tuple:
        if r == 0:
            return self.const(0)
        return self.mk("entry", r)

    def bin(self, op: str, a: tuple, b: tuple) -> tuple:
        if a[0] == "const" and b[0] == "const":
            return self.const(_scalar_bin(op, a[1], b[1]))
        return self.mk("bin", op, a, b)

    def cmp(self, op: str, a: tuple, b: tuple) -> tuple:
        if a[0] == "const" and b[0] == "const":
            return self.mk("constb", bool(_scalar_cmp(op, a[1], b[1])))
        return self.mk("cmp", op, a, b)

    def info(self, node: tuple) -> Tuple[FrozenSet[int], bool]:
        """``(entry registers referenced, tainted)`` for ``node``.

        ``tainted`` is True when the value depends on memory, faults or
        control flow (load/div/phi) — anything that stops it from being
        a uniform per-batch scalar.
        """
        key = id(node)
        cached = self._info.get(key)
        if cached is not None:
            return cached
        tag = node[0]
        if tag in ("const", "constb"):
            out: Tuple[FrozenSet[int], bool] = (frozenset(), False)
        elif tag == "entry":
            out = (frozenset((node[1],)), False)
        elif tag in ("bin", "cmp"):
            ra, fa = self.info(node[2])
            rb, fb = self.info(node[3])
            out = (ra | rb, fa or fb)
        elif tag == "div":
            ra, _ = self.info(node[2])
            rb, _ = self.info(node[3])
            out = (ra | rb, True)
        elif tag == "load":
            ra, _ = self.info(node[1])
            out = (ra, True)
        else:  # phi
            refs: FrozenSet[int] = frozenset()
            for _edge, sub in node[1]:
                rs, _ = self.info(sub)
                refs = refs | rs
            out = (refs, True)
        self._info[key] = out
        return out


def _scalar_bin(op: str, a: int, b: int) -> int:
    if op == "add":
        return _wrap(a + b)
    if op == "sub":
        return _wrap(a - b)
    if op == "mul":
        return _wrap(a * b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return _wrap(a << (b & 63))
    if op == "srl":
        return (a & _M) >> (b & 63)
    if op == "slt":
        return 1 if a < b else 0
    if op == "seq":
        return 1 if a == b else 0
    raise AssertionError(f"unknown scalar bin op {op!r}")


def _scalar_cmp(op: str, a: int, b: int) -> bool:
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "ge":
        return a >= b
    if op == "le":
        return a <= b
    return a > b


def _apply_bin(op: str, a, b):
    """Lane-wise ALU op over int64 arrays and/or python-int uniforms."""
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _scalar_bin(op, a, b)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "slt":
        return np.asarray(a < b, dtype=bool).astype(np.int64)
    if op == "seq":
        return np.asarray(a == b, dtype=bool).astype(np.int64)
    if op in ("sll", "srl"):
        if isinstance(b, np.ndarray):
            shift = (b & 63).astype(np.uint64)
        else:
            shift = np.uint64(b & 63)
        if isinstance(a, np.ndarray):
            value = a.view(np.uint64) if a.dtype == np.int64 \
                else a.astype(np.uint64)
        else:
            value = np.uint64(a & _M)
        out = (value << shift) if op == "sll" else (value >> shift)
        return np.asarray(out, dtype=np.uint64).view(np.int64)
    raise AssertionError(f"unknown bin op {op!r}")


def _apply_cmp(op: str, a, b) -> np.ndarray:
    if op == "eq":
        return np.asarray(a == b, dtype=bool)
    if op == "ne":
        return np.asarray(a != b, dtype=bool)
    if op == "lt":
        return np.asarray(a < b, dtype=bool)
    if op == "ge":
        return np.asarray(a >= b, dtype=bool)
    if op == "le":
        return np.asarray(a <= b, dtype=bool)
    return np.asarray(a > b, dtype=bool)


# ----------------------------------------------------------------------
# Loop plan: blocks, sites, classification
# ----------------------------------------------------------------------

class _Block:
    """One basic block of the loop body DAG."""

    __slots__ = ("index", "start", "end", "term", "cond_node",
                 "taken_block", "fall_block", "jump_block", "is_latch",
                 "is_exit", "n_instr")

    def __init__(self, index: int, start: int) -> None:
        self.index = index
        self.start = start
        self.end = start            # inclusive
        self.term = "fall"          # "cond" | "jump" | "fall"
        self.cond_node: Optional[tuple] = None
        self.taken_block: Optional[int] = None
        self.fall_block: Optional[int] = None
        self.jump_block: Optional[int] = None
        self.is_latch = False
        self.is_exit = False        # cond whose taken edge leaves the loop
        self.n_instr = 0


class _Site:
    """One control record emitted per executing iteration lane."""

    __slots__ = ("pc", "kind", "target", "block", "taken_node")

    def __init__(self, pc: int, kind: int, target: int, block: int,
                 taken_node: Optional[tuple]) -> None:
        self.pc = pc
        self.kind = kind
        self.target = target
        self.block = block
        self.taken_node = taken_node   # None means constant True (J)


class LoopPlan:
    """Everything needed to batch one loop, built once per program."""

    def __init__(self, cp: CompiledProgram, info: LoopInfo) -> None:
        self.cp = cp
        self.info = info
        self.sym = _Sym()
        self.blocks: List[_Block] = []
        self.in_edges: List[List[Tuple[int, str]]] = []
        self.sites: List[_Site] = []
        self.fault_sites: List[Tuple[tuple, int]] = []  # (node, block)
        self.load_sites: List[Tuple[tuple, int, int]] = []  # (node, blk, pc)
        #: ``(addr node, value node, block, pc)`` in address order.
        self.store_sites: List[Tuple[tuple, tuple, int, int]] = []
        self.latch_state: Dict[int, tuple] = {}
        self.written: FrozenSet[int] = frozenset()
        self.classes: Dict[int, tuple] = {}
        self.acc_order: List[int] = []
        self.body_len = info.latch - info.header + 1
        self._build()
        self._classify()

    # -- construction ---------------------------------------------------

    def _build(self) -> None:
        cp = self.cp
        info = self.info
        header, latch = info.header, info.latch
        op_j = int(Op.J)

        leaders = {header}
        for pc in range(header, latch + 1):
            if cp.kind_l[pc] == _K_COND:
                if pc + 1 <= latch:
                    leaders.add(pc + 1)
                tgt = cp.imm_l[pc]
                if header < tgt <= latch and pc != latch:
                    leaders.add(tgt)
            elif cp.ops_l[pc] == op_j and pc != latch:
                tgt = cp.imm_l[pc]
                if header < tgt <= latch:
                    leaders.add(tgt)
                if pc + 1 <= latch:
                    leaders.add(pc + 1)
        order = sorted(leaders)
        index_of = {pc: i for i, pc in enumerate(order)}

        for i, start in enumerate(order):
            blk = _Block(i, start)
            end = order[i + 1] - 1 if i + 1 < len(order) else latch
            pc = start
            while pc <= end:
                if cp.kind_l[pc] == _K_COND or cp.ops_l[pc] == op_j:
                    end = pc
                    break
                pc += 1
            blk.end = end
            blk.n_instr = end - start + 1
            self.blocks.append(blk)

        for blk in self.blocks:
            pc = blk.end
            tgt = cp.imm_l[pc]
            if cp.kind_l[pc] == _K_COND:
                blk.term = "cond"
                if pc == latch and info.shape == LOOP_SHAPE_COND:
                    blk.is_latch = True           # taken = back edge
                elif header <= tgt <= latch:
                    blk.taken_block = index_of[tgt]
                else:
                    blk.is_exit = True            # taken leaves the loop
                if not blk.is_latch:
                    blk.fall_block = blk.index + 1
            elif cp.ops_l[pc] == op_j:
                blk.term = "jump"
                if pc == latch:
                    blk.is_latch = True           # unconditional back edge
                else:
                    blk.jump_block = index_of[tgt]
            else:
                blk.term = "fall"
                blk.jump_block = blk.index + 1

        self.in_edges = [[] for _ in self.blocks]
        for blk in self.blocks:
            if blk.taken_block is not None:
                self.in_edges[blk.taken_block].append((blk.index, "taken"))
            if blk.fall_block is not None:
                self.in_edges[blk.fall_block].append((blk.index, "fall"))
            if blk.jump_block is not None:
                self.in_edges[blk.jump_block].append((blk.index, "jump"))

        # Symbolic execution in address order (all edges go forward).
        states: List[Dict[int, tuple]] = []
        for blk in self.blocks:
            state = self._merge(blk, states)
            self._exec_block(blk, state)
            states.append(state)
        self.latch_state = states[-1]
        self.written = frozenset(self.latch_state)

    def _merge(self, blk: _Block,
               states: List[Dict[int, tuple]]) -> Dict[int, tuple]:
        preds = self.in_edges[blk.index]
        sym = self.sym
        if not preds:
            return {}
        if len(preds) == 1:
            return dict(states[preds[0][0]])
        merged: Dict[int, tuple] = {}
        regs: set = set()
        for pred, _kind in preds:
            regs.update(states[pred])
        for r in regs:
            values = [states[pred].get(r, sym.entry(r))
                      for pred, _kind in preds]
            if all(v is values[0] for v in values):
                merged[r] = values[0]
            else:
                edges = tuple(
                    ((pred, kind), states[pred].get(r, sym.entry(r)))
                    for pred, kind in preds)
                merged[r] = sym.mk("phi", edges)
        return merged

    def _exec_block(self, blk: _Block, state: Dict[int, tuple]) -> None:
        cp = self.cp
        sym = self.sym

        def read(r: int) -> tuple:
            if r == 0:
                return sym.const(0)
            return state.get(r, sym.entry(r))

        bin_ops = {
            int(Op.ADD): "add", int(Op.SUB): "sub", int(Op.MUL): "mul",
            int(Op.AND): "and", int(Op.OR): "or", int(Op.XOR): "xor",
            int(Op.SLL): "sll", int(Op.SRL): "srl", int(Op.SLT): "slt",
            int(Op.SEQ): "seq",
        }
        imm_ops = {
            int(Op.ADDI): "add", int(Op.ANDI): "and", int(Op.ORI): "or",
            int(Op.XORI): "xor", int(Op.MULI): "mul", int(Op.SLTI): "slt",
        }

        for pc in range(blk.start, blk.end + 1):
            op = cp.ops_l[pc]
            rd = cp.rd_l[pc]
            rs1 = cp.rs1_l[pc]
            rs2 = cp.rs2_l[pc]
            imm = cp.imm_l[pc]

            if cp.kind_l[pc] == _K_COND:
                node = sym.cmp(_CMP[op], read(rs1), read(rs2))
                blk.cond_node = node
                self.sites.append(_Site(pc, _K_COND, imm, blk.index, node))
            elif op == int(Op.J):
                self.sites.append(_Site(pc, _K_JUMP, imm, blk.index, None))
            elif op in bin_ops:
                if rd:
                    state[rd] = sym.bin(bin_ops[op], read(rs1), read(rs2))
            elif op in imm_ops:
                if rd:
                    state[rd] = sym.bin(imm_ops[op], read(rs1),
                                        sym.const(imm))
            elif op in (int(Op.SLLI), int(Op.SRLI)):
                if rd:
                    which = "sll" if op == int(Op.SLLI) else "srl"
                    state[rd] = sym.bin(which, read(rs1),
                                        sym.const(imm & 63))
            elif op == int(Op.LI):
                if rd:
                    state[rd] = sym.const(imm)
            elif op == int(Op.LD):
                addr = sym.bin("add", read(rs1), sym.const(imm)) \
                    if imm else read(rs1)
                site = len(self.fault_sites)
                node = sym.mk("load", addr, site)
                self.fault_sites.append((node, blk.index))
                self.load_sites.append((node, blk.index, pc))
                # An ``ld r0, ...`` still bounds-checks: the fault site
                # stays registered though the register write vanishes.
                if rd:
                    state[rd] = node
            elif op == int(Op.ST):
                addr = sym.bin("add", read(rs1), sym.const(imm)) \
                    if imm else read(rs1)
                self.store_sites.append((addr, read(rs2), blk.index, pc))
            elif op in (int(Op.DIV), int(Op.MOD)):
                which = "div" if op == int(Op.DIV) else "mod"
                site = len(self.fault_sites)
                node = sym.mk("div", which, read(rs1), read(rs2), site)
                self.fault_sites.append((node, blk.index))
                if rd:
                    state[rd] = node
            elif op == int(Op.NOP):
                pass
            else:
                raise _Reject(f"op {op} in loop body")

    # -- classification -------------------------------------------------

    def _classify(self) -> None:
        sym = self.sym
        roots: List[tuple] = [s.taken_node for s in self.sites
                              if s.taken_node is not None]
        for addr, value, _blk, _pc in self.store_sites:
            roots.append(addr)
            roots.append(value)
        roots += [node for node, _blk, _pc in self.load_sites]
        roots += list(self.latch_state.values())

        carried: set = set()
        for node in roots:
            refs, _ = sym.info(node)
            carried.update(refs)

        invariant = {r for r in carried
                     if r not in self.written
                     or self.latch_state[r] is sym.entry(r)}
        classes: Dict[int, tuple] = {r: ("inv",) for r in invariant}

        def is_uniform(node: tuple) -> bool:
            refs, tainted = sym.info(node)
            return not tainted and refs <= invariant

        def affine_of(node: tuple, r: int):
            """``(a_node, c_node, k)``: value ``((a*x + c) & mask(k))``.

            Deferred masking is exact because add/sub/mul commute with
            reduction mod ``2^k`` — valid only while the mask is the
            final operation, hence the ``k == 64`` requirement on every
            composition step.
            """
            tag = node[0]
            if tag == "entry" and node[1] == r:
                return sym.const(1), sym.const(0), 64
            if is_uniform(node):
                return sym.const(0), node, 64
            if tag != "bin":
                return None
            op, x, y = node[1], node[2], node[3]
            if op == "and":
                for chain, mask in ((x, y), (y, x)):
                    if mask[0] == "const" and mask[1] > 0 \
                            and (mask[1] + 1) & mask[1] == 0:
                        sub = affine_of(chain, r)
                        if sub is not None and sub[2] == 64:
                            return sub[0], sub[1], mask[1].bit_length()
                return None
            if op not in ("add", "sub", "mul"):
                return None
            x_has = r in sym.info(x)[0]
            y_has = r in sym.info(y)[0]
            if x_has and is_uniform(y):
                sub = affine_of(x, r)
                if sub is None or sub[2] != 64:
                    return None
                a, c, _k = sub
                if op == "add":
                    return a, sym.bin("add", c, y), 64
                if op == "sub":
                    return a, sym.bin("sub", c, y), 64
                return sym.bin("mul", a, y), sym.bin("mul", c, y), 64
            if y_has and is_uniform(x):
                sub = affine_of(y, r)
                if sub is None or sub[2] != 64:
                    return None
                a, c, _k = sub
                if op == "add":
                    return a, sym.bin("add", c, x), 64
                if op == "sub":
                    return (sym.bin("mul", a, sym.const(-1)),
                            sym.bin("sub", x, c), 64)
                return sym.bin("mul", a, x), sym.bin("mul", c, x), 64
            return None

        def delta_of(node: tuple, r: int):
            """Extract ``d`` from ``x_{i+1} = x_i + d`` shapes."""
            tag = node[0]
            if tag == "entry" and node[1] == r:
                return sym.const(0)
            if tag == "bin" and node[1] in ("add", "sub"):
                x, y = node[2], node[3]
                if x is sym.entry(r) and r not in sym.info(y)[0]:
                    return y if node[1] == "add" \
                        else sym.bin("mul", y, sym.const(-1))
                if node[1] == "add" and y is sym.entry(r) \
                        and r not in sym.info(x)[0]:
                    return x
                return None
            if tag == "phi":
                edges = []
                for edge, sub in node[1]:
                    d = delta_of(sub, r)
                    if d is None:
                        return None
                    edges.append((edge, d))
                return sym.mk("phi", tuple(edges))
            return None

        acc_delta: Dict[int, tuple] = {}
        for r in sorted(carried):
            if r in classes:
                continue
            latch = self.latch_state[r]
            aff = affine_of(latch, r)
            if aff is not None:
                classes[r] = ("affine", aff[0], aff[1], aff[2])
                continue
            d = delta_of(latch, r)
            if d is not None:
                acc_delta[r] = d
                continue
            raise _Reject(f"register r{r} is not closed-form")

        # Accumulator deltas may reference other accumulators, but only
        # acyclically; internal branch conditions may not reference any
        # accumulator (their masks gate the deltas — a cycle).
        allowed = set(classes)
        remaining = dict(acc_delta)
        while remaining:
            progressed = False
            for r in sorted(remaining):
                refs, _ = sym.info(remaining[r])
                if refs <= allowed:
                    self.acc_order.append(r)
                    allowed.add(r)
                    del remaining[r]
                    progressed = True
            if not progressed:
                raise _Reject("cyclic accumulator dependencies")
        for r in self.acc_order:
            classes[r] = ("acc", acc_delta[r])

        safe_for_masks = {r for r, c in classes.items()
                          if c[0] in ("inv", "affine")}
        for blk in self.blocks:
            if blk.cond_node is None or blk.is_latch or blk.is_exit:
                continue
            refs, _ = sym.info(blk.cond_node)
            if not refs <= safe_for_masks:
                raise _Reject("internal branch depends on an accumulator")

        self.classes = classes


def compile_loop(cp: CompiledProgram,
                 info: LoopInfo) -> Optional[LoopPlan]:
    """Build a :class:`LoopPlan`, or ``None`` when the loop rejects."""
    try:
        return LoopPlan(cp, info)
    except _Reject:
        return None


# ----------------------------------------------------------------------
# Batch evaluation
# ----------------------------------------------------------------------

class _Eval:
    """Evaluates plan expressions over one batch of N iteration lanes."""

    def __init__(self, plan: LoopPlan, regs: List[int], mem: np.ndarray,
                 n: int) -> None:
        self.plan = plan
        self.regs = regs
        self.mem = mem
        self.n = n
        #: carried reg -> int64 closed-form array of length ``n + 1``.
        self.closed: Dict[int, np.ndarray] = {}
        self.masks: List[np.ndarray] = []
        self.condb: List[Optional[np.ndarray]] = []
        self.memo: Dict[int, object] = {}
        self.fault: List[Tuple[np.ndarray, int]] = []
        self.load_addrs: Dict[int, np.ndarray] = {}

    def lanes(self, value) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return value
        return np.full(self.n, value, dtype=np.int64)

    def lanes_bool(self, value) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return value
        return np.full(self.n, bool(value), dtype=bool)

    def eval(self, node: tuple):
        key = id(node)
        if key in self.memo:
            return self.memo[key]
        out = self._eval(node)
        self.memo[key] = out
        return out

    def _eval(self, node: tuple):
        tag = node[0]
        if tag in ("const", "constb"):
            return node[1]
        if tag == "entry":
            r = node[1]
            arr = self.closed.get(r)
            if arr is not None:
                return arr[:self.n]
            return self.regs[r]
        if tag == "bin":
            a = self.eval(node[2])
            b = self.eval(node[3])
            if node[1] == "srl":
                return self._eval_srl(a, b)
            return _apply_bin(node[1], a, b)
        if tag == "cmp":
            a = self.eval(node[2])
            b = self.eval(node[3])
            if not isinstance(a, np.ndarray) \
                    and not isinstance(b, np.ndarray):
                return _scalar_cmp(node[1], a, b)
            return _apply_cmp(node[1], a, b)
        if tag == "div":
            return self._eval_div(node)
        if tag == "load":
            return self._eval_load(node)
        return self._eval_phi(node)

    def _eval_srl(self, a, b):
        # SRL with a zero shift count leaves a negative operand
        # unwrapped — the interpreter's result exceeds int64 — while
        # the uint64 view below wraps.  Cut any lane where the two
        # disagree so the scalar tiers reproduce the exact value.
        if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
            out = _scalar_bin("srl", a, b)
            if out > _I64_MAX:
                raise OverflowError("unwrapped srl result exceeds int64")
            return out
        out = _apply_bin("srl", a, b)
        bad = np.asarray(np.logical_and((b & 63) == 0, a < 0),
                         dtype=bool)
        if bad.ndim == 0:
            if bool(bad):
                raise OverflowError("unwrapped srl result exceeds int64")
        elif bad.any():
            # Block 0 is the header: its mask is all-true, so this is
            # conservative for lanes that never reach the SRL.
            self.fault.append((bad, 0))
        return out

    def _eval_div(self, node: tuple):
        which, site = node[1], node[4]
        a = self.lanes(self.eval(node[2]))
        b = self.lanes(self.eval(node[3]))
        # Lanes the closed form cannot handle re-run on the scalar
        # tiers: division by zero (which must raise there) and
        # INT64_MIN inputs (Python-int abs() has no wraparound,
        # numpy's does).
        bad = (b == 0) | (a == _I64_MIN) | (b == _I64_MIN)
        self.fault.append((bad, self.plan.fault_sites[site][1]))
        safe_b = np.where(bad, np.int64(1), b)
        q = np.abs(a) // np.abs(safe_b)
        q = np.where((a < 0) != (safe_b < 0), -q, q)
        if which == "div":
            return q
        return a - q * safe_b

    def _eval_load(self, node: tuple):
        addr = self.lanes(self.eval(node[1]))
        site = node[2]
        size = self.mem.shape[0]
        bad = (addr < 0) | (addr >= size)
        self.fault.append((bad, self.plan.fault_sites[site][1]))
        self.load_addrs[site] = addr
        if size == 0:
            return np.zeros(self.n, dtype=np.int64)
        return self.mem[np.clip(addr, 0, size - 1)]

    def _eval_phi(self, node: tuple):
        edges = node[1]
        result = self.lanes(self.eval(edges[0][1]))
        for (pred, kind), sub in edges[1:]:
            value = self.eval(sub)
            result = np.where(self.edge_mask(pred, kind), value, result)
        return result

    def edge_mask(self, pred: int, kind: str) -> np.ndarray:
        if kind == "jump":
            return self.masks[pred]
        cond = self.condb[pred]
        if cond is None:
            # Fall edge of an exit block: for every committed lane the
            # exit did not fire, so the fall-through mask is the block
            # mask itself.  (Lanes at or past the cut carry garbage
            # anyway; the cut excludes them from the commit.)
            assert kind == "fall"
            return self.masks[pred]
        if kind == "taken":
            return self.masks[pred] & cond
        return self.masks[pred] & ~cond


def _closed_affine(x0: int, a: int, c: int, k: int, n: int,
                   pow_cache: Dict[Tuple[int, int],
                                   Tuple[np.ndarray, np.ndarray]]
                   ) -> np.ndarray:
    """``x_i`` for ``i in [0, n]`` of ``x -> ((a*x + c) & mask(k))``.

    Index 0 is the raw entry value (the mask applies to the update, not
    to the incoming state).  Arithmetic runs in ``uint64``; the deferred
    mask is exact because add/mul commute with reduction mod ``2^k``.
    """
    x0_u = np.uint64(x0 & _M)
    a_u = a & _M
    c_u = np.uint64(c & _M)
    if a_u == 1:
        idx = np.arange(n + 1, dtype=np.uint64)
        x = x0_u + c_u * idx
    else:
        key = (a_u, n)
        cached = pow_cache.get(key)
        if cached is None:
            powers = np.empty(n + 1, dtype=np.uint64)
            powers[0] = 1
            powers[1:] = a_u
            np.cumprod(powers, out=powers)
            geo = np.empty(n + 1, dtype=np.uint64)
            geo[0] = 0
            np.cumsum(powers[:n], out=geo[1:])
            pow_cache[key] = (powers, geo)
        else:
            powers, geo = cached
        x = powers * x0_u + geo * c_u
    if k < 64:
        x = x & np.uint64((1 << k) - 1)
        x[0] = x0_u
    return x.view(np.int64)


def _closed_acc(x0: int, delta, n: int) -> np.ndarray:
    """``x_i`` for ``i in [0, n]`` of ``x += delta_i`` (uint64 wrap)."""
    x = np.empty(n + 1, dtype=np.uint64)
    x[0] = x0 & _M
    if isinstance(delta, np.ndarray):
        d_u = delta.view(np.uint64) if delta.dtype == np.int64 \
            else delta.astype(np.uint64)
        np.cumsum(d_u, out=x[1:])
        x[1:] += x[0]
    else:
        x[1:] = x[0] + np.uint64(delta & _M) * np.arange(
            1, n + 1, dtype=np.uint64)
    return x.view(np.int64)


class Stepper:
    """Adaptive batched executor installed at one loop header.

    Callable with the dispatch-function protocol of
    :class:`repro.cpu.fast.FastMachine`: invoking it executes some
    amount of work starting at the header and returns the next PC.
    Until warmed up — and whenever batching is not profitable — it
    delegates to the header's generated superblock function.
    """

    def __init__(self, machine, plan: LoopPlan, fallback) -> None:
        self._m = machine
        self.plan = plan
        self.header = plan.info.header
        self._fallback = fallback
        self._n = _N_START
        self._visits = 0
        self._next_try = _WARMUP_VISITS
        self._strikes = 0
        self._skip = False
        self._disabled = False
        self._pow_cache: Dict[Tuple[int, int],
                              Tuple[np.ndarray, np.ndarray]] = {}
        #: Telemetry: instructions committed by batches, batch count,
        #: and cut counts by reason ("exit", "budget", "alias", "zero").
        self.stats: Dict[str, int] = {
            "committed": 0, "batches": 0,
            "exit": 0, "budget": 0, "alias": 0, "zero": 0,
            "overflow": 0,
        }
        sites = plan.sites
        self._site_pc = np.array([s.pc for s in sites], dtype=np.int64)
        self._site_kind = np.array([s.kind for s in sites],
                                   dtype=np.uint8)
        self._site_tgt = np.array([s.target for s in sites],
                                  dtype=np.int64)

    def __call__(self) -> int:
        if self._disabled:
            return self._fallback()
        self._visits += 1
        if self._skip:
            self._skip = False
            return self._fallback()
        if self._visits < self._next_try:
            return self._fallback()
        return self._batch()

    def _strike(self) -> None:
        self._strikes += 1
        if self._strikes >= _MAX_STRIKES:
            self._disabled = True
        else:
            self._next_try = self._visits + _STRIKE_BACKOFF * self._strikes

    def _batch(self) -> int:
        try:
            return self._batch_inner()
        except OverflowError:
            # A value outside int64 leaked into a numpy op (unwrapped
            # SRL-by-0 semantics); the scalar tiers handle it exactly.
            # No state has mutated: the commit step runs only after
            # every expression is already evaluated.
            self.stats["overflow"] += 1
            self._strike()
            return self._fallback()

    def _batch_inner(self) -> int:
        m = self._m
        plan = self.plan
        allowed = m.soft - m.ctr[0]
        if allowed <= plan.body_len:
            # Not enough budget for even one full iteration; let the
            # generated-code tier drain toward the scalar tail.
            return self._fallback()
        if m.hi_mem:
            # Some memory word holds an unwrapped (above-int64) value;
            # vector gathers would read the wrapped mirror.
            return self._fallback()
        for value in m.regs:
            if value < _I64_MIN or value > _I64_MAX:
                # An unwrapped register value would make lane 0 of a
                # closed form diverge from the interpreter.
                return self._fallback()
        n = self._n
        ev = _Eval(plan, m.regs, m.mem, n)

        # 1. Closed-form arrays for affine carried registers.
        for r, cls in plan.classes.items():
            if cls[0] == "affine":
                a = ev.eval(cls[1])
                c = ev.eval(cls[2])
                ev.closed[r] = _closed_affine(m.regs[r], a, c, cls[3],
                                              n, self._pow_cache)
        # 2. Block masks and *internal* branch conditions, in address
        #    order.  Exit and latch conditions may reference
        #    accumulators, whose closed forms do not exist yet; they do
        #    not feed masks (see ``edge_mask``) and evaluate in step 5.
        for blk in plan.blocks:
            if blk.index == 0:
                mask = np.ones(n, dtype=bool)
            else:
                mask = np.zeros(n, dtype=bool)
                for pred, kind in plan.in_edges[blk.index]:
                    mask |= ev.edge_mask(pred, kind)
            ev.masks.append(mask)
            cond = None
            if blk.cond_node is not None \
                    and not (blk.is_exit or blk.is_latch):
                cond = ev.lanes_bool(ev.eval(blk.cond_node))
            ev.condb.append(cond)
        # 3. Accumulators (their deltas may reach masks through phis).
        for r in plan.acc_order:
            delta = ev.eval(plan.classes[r][1])
            if isinstance(delta, np.ndarray):
                delta = ev.lanes(delta)
            ev.closed[r] = _closed_acc(m.regs[r], delta, n)
        # 4. Evaluate stores and every fault site (including ones whose
        #    results are otherwise unused, e.g. an ``ld r0``).
        store_addr = [ev.lanes(ev.eval(addr))
                      for addr, _v, _b, _pc in plan.store_sites]
        store_val = [ev.lanes(ev.eval(value))
                     for _a, value, _b, _pc in plan.store_sites]
        size = m.mem.shape[0]
        for addr, (_a, _v, blk, _pc) in zip(store_addr,
                                            plan.store_sites):
            ev.fault.append(((addr < 0) | (addr >= size), blk))
        for node, _blk in plan.fault_sites:
            ev.eval(node)
        # Force every value the commit will need: a lazily-referenced
        # expression (e.g. an SRL feeding only a register's end state)
        # must register its fault lanes before the cut is chosen, and
        # an overflow must abort before any state mutates.
        for r in plan.written:
            cls = plan.classes.get(r)
            if cls is not None and cls[0] == "inv":
                continue
            if r not in ev.closed:
                ev.eval(plan.latch_state[r])
        # 5. Fold exits and faults into the cut.
        stop = np.zeros(n, dtype=bool)
        for blk in plan.blocks:
            if blk.is_exit:
                fired = ev.lanes_bool(ev.eval(blk.cond_node))
                stop |= ev.masks[blk.index] & fired
        last = plan.blocks[-1]
        if last.is_latch and last.cond_node is not None:
            back = ev.lanes_bool(ev.eval(last.cond_node))
            stop |= ev.masks[last.index] & ~back
        for bad, blk in ev.fault:
            stop |= bad & ev.masks[blk]
        t = int(np.argmax(stop)) if stop.any() else n
        exit_cut = t < n
        # 6. Budget cut: committed instruction counts must stay under
        #    the soft limit so the dispatch loop keeps its invariant.
        counts = np.zeros(n, dtype=np.int64)
        for blk in plan.blocks:
            counts += ev.masks[blk.index] * np.int64(blk.n_instr)
        cum = np.cumsum(counts)
        t_budget = int(np.searchsorted(cum, allowed, side="right"))
        budget_cut = t_budget < t
        if budget_cut:
            t = t_budget
        # 7. Alias cut.  The gathers in step 4 read pre-batch memory, so
        #    a load is invalid when an *earlier lane* stores its address
        #    — or its own lane does at an earlier body PC.  A same-lane
        #    store at a later PC is harmless (the interpreter's load
        #    happens first), which is what lets ``a[i] = f(a[i])``
        #    sweeps batch at full width.
        if t > 0 and plan.store_sites and plan.load_sites:
            lane_idx = np.arange(t, dtype=np.int64)
            st_addr_parts = []
            st_lane_parts = []
            for addr, (_a, _v, blk, _pc) in zip(store_addr,
                                                plan.store_sites):
                active = ev.masks[blk][:t]
                st_addr_parts.append(addr[:t][active])
                st_lane_parts.append(lane_idx[active])
            all_addr = np.concatenate(st_addr_parts)
            if all_addr.size:
                all_lane = np.concatenate(st_lane_parts)
                order = np.lexsort((all_lane, all_addr))
                sa = all_addr[order]
                sl = all_lane[order]
                head = np.ones(sa.size, dtype=bool)
                head[1:] = sa[1:] != sa[:-1]
                uaddr = sa[head]      # unique store addresses ...
                ulane = sl[head]      # ... and the first lane storing each
                hit = np.zeros(t, dtype=bool)
                for node, lblk, lpc in plan.load_sites:
                    la = ev.load_addrs[node[2]][:t]
                    lmask = ev.masks[lblk][:t]
                    pos = np.clip(np.searchsorted(uaddr, la),
                                  0, uaddr.size - 1)
                    hit |= lmask & (uaddr[pos] == la) \
                        & (ulane[pos] < lane_idx)
                    for saddr, (_a2, _v2, sblk, spc) in zip(
                            store_addr, plan.store_sites):
                        if spc < lpc:
                            hit |= lmask & ev.masks[sblk][:t] \
                                & (saddr[:t] == la)
                if hit.any():
                    cut = int(np.argmax(hit))
                    if cut < t:
                        t = cut
                        budget_cut = False
                        exit_cut = False
                        self.stats["alias"] += 1

        if t <= 0:
            self.stats["zero"] += 1
            if not budget_cut:
                self._strike()
            return self._fallback()

        # 8. Commit: records, stores, registers, instruction count.
        self._emit_records(ev, t)
        self._apply_stores(ev, store_addr, store_val, t)
        for r in plan.written:
            cls = plan.classes.get(r)
            if cls is not None and cls[0] == "inv":
                continue
            arr = ev.closed.get(r)
            if arr is not None:
                m.regs[r] = int(arr[t])
            else:
                value = ev.eval(plan.latch_state[r])
                m.regs[r] = int(value[t - 1]) \
                    if isinstance(value, np.ndarray) else value
        m.ctr[0] += int(cum[t - 1])
        self.stats["batches"] += 1
        self.stats["committed"] += int(cum[t - 1])
        if budget_cut:
            self.stats["budget"] += 1
        elif exit_cut:
            self.stats["exit"] += 1
        if self.stats["batches"] >= _YIELD_PROBATION \
                and self.stats["committed"] \
                < _MIN_YIELD * self.stats["batches"]:
            self._disabled = True

        # 9. Adapt.  A cut batch means the next header visit is the
        #    exiting / faulting / aliasing iteration: run it on the
        #    generated-code tier once before batching again.
        if t == n:
            self._n = min(self._n * 4, _N_MAX)
        else:
            self._skip = True
            if budget_cut:
                pass
            elif t >= _MIN_TRIP:
                self._n = max(_N_START, min(_N_MAX, 2 * t))
                self._strikes = 0
            else:
                self._strike()
        return self.header

    def _emit_records(self, ev: _Eval, t: int) -> None:
        plan = self.plan
        n_sites = len(plan.sites)
        act = np.empty((t, n_sites), dtype=bool)
        taken = np.empty((t, n_sites), dtype=bool)
        for j, site in enumerate(plan.sites):
            act[:, j] = ev.masks[site.block][:t]
            if site.taken_node is None:
                taken[:, j] = True
            else:
                taken[:, j] = ev.lanes_bool(ev.eval(site.taken_node))[:t]
        sel = act.ravel()
        shape = (t, n_sites)
        pc = np.broadcast_to(self._site_pc, shape).ravel()[sel]
        kind = np.broadcast_to(self._site_kind, shape).ravel()[sel]
        tgt = np.broadcast_to(self._site_tgt, shape).ravel()[sel]
        self._m.emit_batch(pc, kind, taken.ravel()[sel], tgt)

    def _apply_stores(self, ev: _Eval, store_addr: List[np.ndarray],
                      store_val: List[np.ndarray], t: int) -> None:
        plan = self.plan
        if not plan.store_sites:
            return
        n_sites = len(plan.store_sites)
        addrs = np.empty((t, n_sites), dtype=np.int64)
        vals = np.empty((t, n_sites), dtype=np.int64)
        keep = np.empty((t, n_sites), dtype=bool)
        for j, (_a, _v, blk, _pc) in enumerate(plan.store_sites):
            addrs[:, j] = store_addr[j][:t]
            vals[:, j] = store_val[j][:t]
            keep[:, j] = ev.masks[blk][:t]
        flat_keep = keep.ravel()
        flat_addr = addrs.ravel()[flat_keep]
        flat_val = vals.ravel()[flat_keep]
        if flat_addr.size == 0:
            return
        # Execution order is lane-major / site-minor; keep-last so that
        # duplicate addresses resolve the way sequential stores would.
        rev_addr = flat_addr[::-1]
        unique, first = np.unique(rev_addr, return_index=True)
        self._m.mem[unique] = flat_val[::-1][first]
