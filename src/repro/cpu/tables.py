"""Program compilation for the fast tracer: flat tables and loop shapes.

The vectorized tracer never walks :class:`~repro.isa.instructions.Instruction`
objects at run time.  :func:`compile_program` decodes a
:class:`~repro.isa.program.Program` once into a structure-of-arrays form —
per-PC opcode / kind / destination / operand / immediate vectors — and
discovers the structural facts the two execution tiers need:

* **superblock boundaries** — addresses the generated-code tier must not
  inline across (vectorizable loop headers own their own stepper);
* **natural loops** — innermost ``[header, latch]`` regions with a single
  back edge and forward-only internal control flow, the candidates the
  batched stepper of :mod:`repro.cpu.vector` tries to close-form.

Everything here is static: one :class:`CompiledProgram` is built per
program and shared by every run, so the cost is amortised across sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..isa.kinds import InstrKind, classify_op
from ..isa.opcodes import Op
from ..isa.program import Program

_K_COND = int(InstrKind.COND)
_K_JUMP = int(InstrKind.JUMP)

#: Back-edge shapes a vectorizable loop may have.
LOOP_SHAPE_COND = "cond"   #: latch is a conditional branch taken to the header
LOOP_SHAPE_JUMP = "jump"   #: latch is an unconditional ``J`` to the header


@dataclass(frozen=True)
class LoopInfo:
    """One structurally vectorizable natural loop.

    The region is ``[header, latch]`` inclusive; the latch holds the only
    back edge.  ``shape`` distinguishes rotated (do-while) loops whose
    latch conditional *is* the back edge from while-style loops closed by
    an unconditional jump.  Structural candidacy is necessary but not
    sufficient — :mod:`repro.cpu.vector` still has to classify every
    loop-carried register before a stepper is installed.
    """

    header: int
    latch: int
    shape: str


@dataclass
class CompiledProgram:
    """Flat decode tables plus loop/CFG structure for one program."""

    program: Program
    n_code: int
    entry: int
    data_size: int
    #: Structure-of-arrays decode (one row per PC).
    op: np.ndarray        #: ``uint8`` opcode values
    rd: np.ndarray        #: ``uint8`` destination register
    rs1: np.ndarray       #: ``uint8`` first source register
    rs2: np.ndarray       #: ``uint8`` second source register
    imm: np.ndarray       #: ``int64`` immediate / absolute target
    kind: np.ndarray      #: ``uint8`` :class:`InstrKind` per PC
    #: Python-int mirrors of the SoA rows (fast indexing for codegen).
    ops_l: List[int] = field(repr=False, default_factory=list)
    rd_l: List[int] = field(repr=False, default_factory=list)
    rs1_l: List[int] = field(repr=False, default_factory=list)
    rs2_l: List[int] = field(repr=False, default_factory=list)
    imm_l: List[int] = field(repr=False, default_factory=list)
    kind_l: List[int] = field(repr=False, default_factory=list)
    #: Structurally vectorizable loops, by header PC.
    loops: Dict[int, LoopInfo] = field(default_factory=dict)
    #: PCs the superblock builder must stop at (loop headers).
    stop_pcs: frozenset = frozenset()


def _find_loops(ops: List[int], imms: List[int],
                kinds: List[int]) -> Dict[int, LoopInfo]:
    """Innermost single-back-edge loops with forward-only interior flow.

    A candidate is a backward edge ``latch -> header`` from either a
    conditional branch or a ``J``.  The region is rejected when it
    contains calls, indirect transfers, HALT, another backward edge, or
    a jump escaping the region — those run on the generated-code tier.
    """
    op_j = int(Op.J)
    back_edges: List[Tuple[int, int, str]] = []
    for pc, kind in enumerate(kinds):
        if kind == _K_COND and imms[pc] <= pc:
            back_edges.append((imms[pc], pc, LOOP_SHAPE_COND))
        elif ops[pc] == op_j and imms[pc] <= pc:
            back_edges.append((imms[pc], pc, LOOP_SHAPE_JUMP))

    loops: Dict[int, LoopInfo] = {}
    for header, latch, shape in back_edges:
        if header in loops:          # two back edges to one header
            del loops[header]
            continue
        ok = True
        for pc in range(header, latch + 1):
            kind = kinds[pc]
            op = ops[pc]
            if kind in (int(InstrKind.CALL), int(InstrKind.RETURN),
                        int(InstrKind.INDIRECT), int(InstrKind.HALT)):
                ok = False
                break
            if kind == _K_COND:
                if pc == latch and shape == LOOP_SHAPE_COND:
                    continue         # the back edge itself
                if imms[pc] <= pc:
                    ok = False       # inner loop or second back edge
                    break
            elif op == op_j:
                if pc == latch and shape == LOOP_SHAPE_JUMP:
                    continue
                if imms[pc] <= pc or imms[pc] > latch:
                    ok = False       # inner back edge or escaping jump
                    break
        if ok:
            loops[header] = LoopInfo(header=header, latch=latch,
                                     shape=shape)
    # Keep innermost loops only: a region containing another header is
    # an outer loop and runs on the generated-code tier.  (Single-back-
    # edge regions cannot nest unless the check above missed an inner
    # back edge, but two loops may share a latch-free prefix.)
    headers = sorted(loops)
    nested = set()
    for h in headers:
        info = loops[h]
        for other in headers:
            if other != h and info.header <= other <= info.latch:
                nested.add(h)
                break
    for h in nested:
        del loops[h]
    return loops


def compile_program(program: Program) -> CompiledProgram:
    """Decode ``program`` into flat tables and discover its loops."""
    instrs = program.instructions
    n = len(instrs)
    op = np.zeros(n, dtype=np.uint8)
    rd = np.zeros(n, dtype=np.uint8)
    rs1 = np.zeros(n, dtype=np.uint8)
    rs2 = np.zeros(n, dtype=np.uint8)
    imm = np.zeros(n, dtype=np.int64)
    kind = np.zeros(n, dtype=np.uint8)
    for pc, inst in enumerate(instrs):
        op[pc] = int(inst.op)
        rd[pc] = inst.rd
        rs1[pc] = inst.rs1
        rs2[pc] = inst.rs2
        imm[pc] = inst.imm
        kind[pc] = int(classify_op(inst.op))

    ops_l = op.tolist()
    imm_l = imm.tolist()
    kind_l = kind.tolist()
    loops = _find_loops(ops_l, imm_l, kind_l)
    return CompiledProgram(
        program=program,
        n_code=n,
        entry=program.entry,
        data_size=program.data_size,
        op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, kind=kind,
        ops_l=ops_l,
        rd_l=rd.tolist(),
        rs1_l=rs1.tolist(),
        rs2_l=rs2.tolist(),
        imm_l=imm_l,
        kind_l=kind_l,
        loops=loops,
        stop_pcs=frozenset(loops),
    )
