"""FastMachine: the vectorized trace-capture driver.

Drop-in replacement for :class:`repro.cpu.machine.Machine` behind the
``REPRO_TRACER=fast`` knob.  Execution runs through three tiers sharing
one architectural state (register list, numpy data memory, instruction
counter):

1. **Batched steppers** (:mod:`repro.cpu.vector`) — installed at
   vectorizable loop headers; one call commits up to tens of thousands
   of iterations with a handful of numpy operations.
2. **Generated superblocks** (:mod:`repro.cpu.codegen`) — everything
   else on the hot path: straight-line runs, calls, rejected loops.
   Compiled lazily per entry PC, so indirect jumps to arbitrary
   addresses just materialise new superblocks.
3. **A scalar tail** — a per-instruction loop identical to
   :meth:`Machine.run`, used for the final stretch before the
   instruction budget so truncation lands on exactly the same
   instruction as the interpreter.

The dispatch invariant: tiers are only entered while the executed count
is below ``soft = max_instructions - SUPERBLOCK_CAP``, and one tier call
consumes at most ``SUPERBLOCK_CAP`` instructions (steppers budget-cut
their batches against ``soft``), so the tail always takes over strictly
before the budget and replicates the interpreter's final records and
synthetic-HALT truncation bit for bit.

Records accumulate as Python lists while scalar tiers run and as numpy
segments when steppers emit batches; ``run`` concatenates them into one
:class:`~repro.trace.record.Trace`, while ``run_streaming`` hands
bounded-size array segments to a sink callback so a ``10^8``-instruction
capture never materialises the full trace in memory.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .codegen import SUPERBLOCK_CAP, compile_superblock
from .machine import MachineError, RunResult
from .tables import CompiledProgram, compile_program
from .vector import Stepper, compile_loop
from ..isa.kinds import InstrKind
from ..isa.opcodes import Op
from ..isa.program import Program
from ..trace.record import Trace

_WORD_MASK = (1 << 64) - 1
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_K_COND = int(InstrKind.COND)
_K_JUMP = int(InstrKind.JUMP)
_K_CALL = int(InstrKind.CALL)
_K_RETURN = int(InstrKind.RETURN)
_K_INDIRECT = int(InstrKind.INDIRECT)
_K_HALT = int(InstrKind.HALT)


def _wrap(value: int) -> int:
    value &= _WORD_MASK
    return value - (1 << 64) if value & (1 << 63) else value


#: Signature of a streaming record sink: four equal-length arrays of
#: dtype int64 / uint8 / bool / int64 in execution order.
RecordSink = Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
                      None]


class FastMachine:
    """Executes one program with the tiered fast tracer.

    Mirrors the :class:`~repro.cpu.machine.Machine` interface —
    ``regs``/``mem`` inspection and ``run`` — with ``mem`` held as an
    ``int64`` numpy array instead of a list (values compare equal).
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.cp: CompiledProgram = compile_program(program)
        self.regs: List[int] = [0] * 32
        self.mem = np.zeros(self.cp.data_size, dtype=np.int64)
        self.ctr: List[int] = [0]
        self.soft = 0
        self._hlt: List[int] = [0]
        #: Memory words whose interpreter value exceeds int64 (unwrapped
        #: SRL-by-0 results); ``mem`` keeps a wrapped mirror.  Empty for
        #: nearly every program.
        self.hi_mem: Dict[int, int] = {}
        self._rec_pc: List[int] = []
        self._rec_kind: List[int] = []
        self._rec_taken: List[bool] = []
        self._rec_target: List[int] = []
        self._segments: List[Tuple[np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._sink: Optional[RecordSink] = None
        self._flush_records = 0
        self._fns: Dict[int, Callable[[], int]] = {}
        self._ns = {
            "R": self.regs,
            "mem": self.mem,
            "ap": self._rec_pc.append,
            "ak": self._rec_kind.append,
            "at": self._rec_taken.append,
            "ag": self._rec_target.append,
            "ctr": self.ctr,
            "hlt": self._hlt,
            "hi": self.hi_mem,
        }

    # -- public API -----------------------------------------------------

    def run(self, max_instructions: int = 10_000_000) -> RunResult:
        """Execute from the entry; same contract as :meth:`Machine.run`."""
        halted, truncated, executed = self._execute(max_instructions)
        self._seal()
        pc, kind, taken, target = self._concat_segments()
        trace = Trace(
            entry_pc=self.program.entry,
            n_instructions=executed,
            pc=pc, kind=kind, taken=taken, target=target,
            truncated=truncated,
            name=self.program.name,
        )
        return RunResult(trace=trace, instructions=executed, halted=halted)

    def run_streaming(self, sink: RecordSink,
                      max_instructions: int = 10_000_000,
                      flush_records: int = 1 << 20
                      ) -> Tuple[int, bool, bool]:
        """Execute, handing record segments of bounded size to ``sink``.

        Returns ``(n_instructions, halted, truncated)``.  Peak memory is
        bounded by ``flush_records`` plus one stepper batch, independent
        of the trace length.
        """
        self._sink = sink
        self._flush_records = max(1, flush_records)
        try:
            halted, truncated, executed = self._execute(max_instructions)
            self._seal()
            self._flush()
        finally:
            self._sink = None
        return executed, halted, truncated

    # -- record plumbing ------------------------------------------------

    def emit_batch(self, pc: np.ndarray, kind: np.ndarray,
                   taken: np.ndarray, target: np.ndarray) -> None:
        """Append one stepper batch, keeping stream order with the lists."""
        self._seal()
        self._segments.append((pc, kind, taken, target))
        self._buffered += int(pc.shape[0])
        if self._sink is not None \
                and self._buffered >= self._flush_records:
            self._flush()

    def _seal(self) -> None:
        """Convert the scalar-tier record lists into one numpy segment."""
        if not self._rec_pc:
            return
        self._segments.append((
            np.asarray(self._rec_pc, dtype=np.int64),
            np.asarray(self._rec_kind, dtype=np.uint8),
            np.asarray(self._rec_taken, dtype=bool),
            np.asarray(self._rec_target, dtype=np.int64),
        ))
        self._buffered += len(self._rec_pc)
        # Clear in place: the generated superblocks hold bound appends.
        del self._rec_pc[:]
        del self._rec_kind[:]
        del self._rec_taken[:]
        del self._rec_target[:]

    def _flush(self) -> None:
        if self._sink is None:
            return
        for segment in self._segments:
            self._sink(*segment)
        del self._segments[:]
        self._buffered = 0

    def _concat_segments(self) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray, np.ndarray]:
        if not self._segments:
            return (np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.uint8),
                    np.zeros(0, dtype=bool),
                    np.zeros(0, dtype=np.int64))
        if len(self._segments) == 1:
            return self._segments[0]
        return (np.concatenate([s[0] for s in self._segments]),
                np.concatenate([s[1] for s in self._segments]),
                np.concatenate([s[2] for s in self._segments]),
                np.concatenate([s[3] for s in self._segments]))

    # -- execution ------------------------------------------------------

    def _execute(self, max_instructions: int) -> Tuple[bool, bool, int]:
        ctr = self.ctr
        hlt = self._hlt
        fns = self._fns
        rec = self._rec_pc
        self.soft = max_instructions - SUPERBLOCK_CAP
        pc = self.program.entry
        halted = False

        while ctr[0] < self.soft:
            fn = fns.get(pc)
            if fn is None:
                fn = self._compile_at(pc)
            pc = fn()
            if hlt[0]:
                halted = True
                break
            if self._sink is not None \
                    and len(rec) >= self._flush_records:
                self._seal()
                self._flush()

        if not halted:
            pc, halted = self._scalar_tail(pc, max_instructions)

        truncated = False
        if not halted:
            # Budget exhausted: synthesise a HALT record at the next PC
            # (counted as one instruction), exactly like the interpreter.
            self._rec_pc.append(pc)
            self._rec_kind.append(_K_HALT)
            self._rec_taken.append(False)
            self._rec_target.append(pc + 1)
            ctr[0] += 1
            truncated = True
        return halted, truncated, ctr[0]

    def _compile_at(self, pc: int) -> Callable[[], int]:
        if not 0 <= pc < self.cp.n_code:
            raise MachineError(f"PC out of range: {pc}")
        fn: Optional[Callable[[], int]] = None
        info = self.cp.loops.get(pc)
        if info is not None:
            plan = compile_loop(self.cp, info)
            if plan is not None:
                fallback = compile_superblock(self.cp, pc,
                                              self.cp.stop_pcs, self._ns)
                fn = Stepper(self, plan, fallback)
        if fn is None:
            fn = compile_superblock(self.cp, pc, self.cp.stop_pcs,
                                    self._ns)
        self._fns[pc] = fn
        return fn

    def _scalar_tail(self, pc: int,
                     max_instructions: int) -> Tuple[int, bool]:
        """Per-instruction execution of the final pre-budget stretch.

        A transliteration of :meth:`Machine.run`'s loop operating on
        this machine's state, so the last ``<= SUPERBLOCK_CAP``
        instructions — and any fault inside them — are bit-identical.
        """
        cp = self.cp
        ops = cp.ops_l
        rds = cp.rd_l
        rs1s = cp.rs1_l
        rs2s = cp.rs2_l
        imms = cp.imm_l
        regs = self.regs
        mem = self.mem
        hi = self.hi_mem
        n_code = cp.n_code
        mem_size = cp.data_size
        ctr = self.ctr
        rec_pc = self._rec_pc
        rec_kind = self._rec_kind
        rec_taken = self._rec_taken
        rec_target = self._rec_target

        op_add = int(Op.ADD); op_sub = int(Op.SUB); op_mul = int(Op.MUL)
        op_div = int(Op.DIV); op_mod = int(Op.MOD); op_and = int(Op.AND)
        op_or = int(Op.OR); op_xor = int(Op.XOR); op_sll = int(Op.SLL)
        op_srl = int(Op.SRL); op_slt = int(Op.SLT); op_seq = int(Op.SEQ)
        op_addi = int(Op.ADDI); op_andi = int(Op.ANDI); op_ori = int(Op.ORI)
        op_xori = int(Op.XORI); op_slli = int(Op.SLLI)
        op_srli = int(Op.SRLI); op_slti = int(Op.SLTI)
        op_muli = int(Op.MULI); op_li = int(Op.LI)
        op_ld = int(Op.LD); op_st = int(Op.ST)
        op_beq = int(Op.BEQ); op_bne = int(Op.BNE); op_blt = int(Op.BLT)
        op_bge = int(Op.BGE); op_ble = int(Op.BLE); op_bgt = int(Op.BGT)
        op_j = int(Op.J); op_jal = int(Op.JAL); op_jr = int(Op.JR)
        op_jalr = int(Op.JALR); op_ret = int(Op.RET)
        op_nop = int(Op.NOP); op_halt = int(Op.HALT)

        halted = False
        while ctr[0] < max_instructions:
            if not 0 <= pc < n_code:
                raise MachineError(f"PC out of range: {pc}")
            op = ops[pc]
            rd = rds[pc]
            rs1 = rs1s[pc]
            rs2 = rs2s[pc]
            imm = imms[pc]
            ctr[0] += 1
            next_pc = pc + 1

            if op == op_addi:
                if rd:
                    regs[rd] = _wrap(regs[rs1] + imm)
            elif op == op_ld:
                addr = regs[rs1] + imm
                if not 0 <= addr < mem_size:
                    raise MachineError(
                        f"load out of range at pc={pc}: {addr}")
                if rd:
                    if hi:
                        value = hi.get(addr)
                        regs[rd] = int(mem[addr]) if value is None else value
                    else:
                        regs[rd] = int(mem[addr])
            elif op == op_st:
                addr = regs[rs1] + imm
                if not 0 <= addr < mem_size:
                    raise MachineError(
                        f"store out of range at pc={pc}: {addr}")
                value = regs[rs2]
                if _I64_MIN <= value <= _I64_MAX:
                    mem[addr] = value
                    if hi:
                        hi.pop(addr, None)
                else:
                    mem[addr] = _wrap(value)
                    hi[addr] = value
            elif op == op_add:
                if rd:
                    regs[rd] = _wrap(regs[rs1] + regs[rs2])
            elif op == op_beq or op == op_bne or op == op_blt \
                    or op == op_bge or op == op_ble or op == op_bgt:
                a = regs[rs1]
                b = regs[rs2]
                if op == op_beq:
                    t = a == b
                elif op == op_bne:
                    t = a != b
                elif op == op_blt:
                    t = a < b
                elif op == op_bge:
                    t = a >= b
                elif op == op_ble:
                    t = a <= b
                else:
                    t = a > b
                rec_pc.append(pc)
                rec_kind.append(_K_COND)
                rec_taken.append(t)
                rec_target.append(imm)
                if t:
                    next_pc = imm
            elif op == op_sub:
                if rd:
                    regs[rd] = _wrap(regs[rs1] - regs[rs2])
            elif op == op_li:
                if rd:
                    regs[rd] = _wrap(imm)
            elif op == op_mul:
                if rd:
                    regs[rd] = _wrap(regs[rs1] * regs[rs2])
            elif op == op_muli:
                if rd:
                    regs[rd] = _wrap(regs[rs1] * imm)
            elif op == op_and:
                if rd:
                    regs[rd] = regs[rs1] & regs[rs2]
            elif op == op_or:
                if rd:
                    regs[rd] = regs[rs1] | regs[rs2]
            elif op == op_xor:
                if rd:
                    regs[rd] = regs[rs1] ^ regs[rs2]
            elif op == op_andi:
                if rd:
                    regs[rd] = regs[rs1] & imm
            elif op == op_ori:
                if rd:
                    regs[rd] = regs[rs1] | imm
            elif op == op_xori:
                if rd:
                    regs[rd] = regs[rs1] ^ imm
            elif op == op_sll:
                if rd:
                    regs[rd] = _wrap(regs[rs1] << (regs[rs2] & 63))
            elif op == op_srl:
                if rd:
                    regs[rd] = (regs[rs1] & _WORD_MASK) >> (regs[rs2] & 63)
            elif op == op_slli:
                if rd:
                    regs[rd] = _wrap(regs[rs1] << (imm & 63))
            elif op == op_srli:
                if rd:
                    regs[rd] = (regs[rs1] & _WORD_MASK) >> (imm & 63)
            elif op == op_slt:
                if rd:
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
            elif op == op_slti:
                if rd:
                    regs[rd] = 1 if regs[rs1] < imm else 0
            elif op == op_seq:
                if rd:
                    regs[rd] = 1 if regs[rs1] == regs[rs2] else 0
            elif op == op_div or op == op_mod:
                b = regs[rs2]
                if b == 0:
                    raise MachineError(f"division by zero at pc={pc}")
                a = regs[rs1]
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                if op == op_div:
                    if rd:
                        regs[rd] = _wrap(q)
                else:
                    if rd:
                        regs[rd] = _wrap(a - q * b)
            elif op == op_j:
                rec_pc.append(pc)
                rec_kind.append(_K_JUMP)
                rec_taken.append(True)
                rec_target.append(imm)
                next_pc = imm
            elif op == op_jal:
                regs[1] = pc + 1
                rec_pc.append(pc)
                rec_kind.append(_K_CALL)
                rec_taken.append(True)
                rec_target.append(imm)
                next_pc = imm
            elif op == op_jr or op == op_ret:
                dest = regs[rs1]
                rec_pc.append(pc)
                rec_kind.append(
                    _K_RETURN if op == op_ret else _K_INDIRECT)
                rec_taken.append(True)
                rec_target.append(dest)
                next_pc = dest
            elif op == op_jalr:
                dest = regs[rs1]
                regs[1] = pc + 1
                rec_pc.append(pc)
                rec_kind.append(_K_CALL)
                rec_taken.append(True)
                rec_target.append(dest)
                next_pc = dest
            elif op == op_nop:
                pass
            elif op == op_halt:
                rec_pc.append(pc)
                rec_kind.append(_K_HALT)
                rec_taken.append(False)
                rec_target.append(pc + 1)
                halted = True
                break
            else:
                raise MachineError(f"unknown opcode {op} at pc={pc}")

            pc = next_pc
        return pc, halted


def run_program_fast(program: Program,
                     max_instructions: int = 10_000_000) -> Trace:
    """Convenience wrapper: execute ``program`` with the fast tracer."""
    result = FastMachine(program).run(max_instructions=max_instructions)
    return result.trace
