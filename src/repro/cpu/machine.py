"""Functional interpreter for the tiny RISC ISA.

The machine executes a :class:`~repro.isa.program.Program` and captures the
compressed control-flow trace the fetch simulators consume.  It substitutes
for the paper's Shade/SPARC setup: a real interpreter running real programs,
so branch correlation and call/return structure arise from execution rather
than from a statistical model.

Semantics notes:

* Registers hold Python ints wrapped to signed 64-bit.
* ``DIV``/``MOD`` truncate toward zero (C semantics); division by zero
  raises :class:`MachineError` — workloads are expected to avoid it.
* Data memory is word-addressed, zero-initialised and bounds-checked.
* ``r0`` reads as zero; writes to it are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.kinds import InstrKind, classify_op
from ..isa.opcodes import Op
from ..isa.program import Program
from ..trace.record import Trace

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63

_K_COND = int(InstrKind.COND)
_K_JUMP = int(InstrKind.JUMP)
_K_CALL = int(InstrKind.CALL)
_K_RETURN = int(InstrKind.RETURN)
_K_INDIRECT = int(InstrKind.INDIRECT)
_K_HALT = int(InstrKind.HALT)


def _wrap(value: int) -> int:
    """Wrap a Python int to signed 64-bit."""
    value &= _WORD_MASK
    return value - (1 << 64) if value & _SIGN_BIT else value


class MachineError(Exception):
    """Runtime fault: bad memory access, division by zero, bad indirect PC."""


@dataclass
class RunResult:
    """Outcome of :meth:`Machine.run`."""

    trace: Trace
    instructions: int
    halted: bool  #: True when the program executed HALT before the budget.


class Machine:
    """Executes one program and records its control-flow trace."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regs = [0] * 32
        self.mem = [0] * program.data_size
        # Pre-decode into tuples of plain ints for dispatch speed.
        self._code = [
            (int(i.op), i.rd, i.rs1, i.rs2, i.imm)
            for i in program.instructions
        ]
        self._kinds = [int(classify_op(i.op)) for i in program.instructions]

    def run(self, max_instructions: int = 10_000_000) -> RunResult:
        """Execute from the program entry until HALT or the budget.

        Returns the compressed trace.  When the budget is hit, a synthetic
        HALT record is appended (counted as one executed instruction) so the
        trace is always well terminated; ``trace.truncated`` is set.
        """
        code = self._code
        kinds = self._kinds
        regs = self.regs
        mem = self.mem
        n_code = len(code)
        mem_size = len(mem)

        rec_pc = []
        rec_kind = []
        rec_taken = []
        rec_target = []

        pc = self.program.entry
        entry_pc = pc
        executed = 0
        halted = False
        truncated = False

        # Opcode ints hoisted to locals (fast comparisons in the hot loop).
        op_add = int(Op.ADD); op_sub = int(Op.SUB); op_mul = int(Op.MUL)
        op_div = int(Op.DIV); op_mod = int(Op.MOD); op_and = int(Op.AND)
        op_or = int(Op.OR); op_xor = int(Op.XOR); op_sll = int(Op.SLL)
        op_srl = int(Op.SRL); op_slt = int(Op.SLT); op_seq = int(Op.SEQ)
        op_addi = int(Op.ADDI); op_andi = int(Op.ANDI); op_ori = int(Op.ORI)
        op_xori = int(Op.XORI); op_slli = int(Op.SLLI); op_srli = int(Op.SRLI)
        op_slti = int(Op.SLTI); op_muli = int(Op.MULI); op_li = int(Op.LI)
        op_ld = int(Op.LD); op_st = int(Op.ST)
        op_beq = int(Op.BEQ); op_bne = int(Op.BNE); op_blt = int(Op.BLT)
        op_bge = int(Op.BGE); op_ble = int(Op.BLE); op_bgt = int(Op.BGT)
        op_j = int(Op.J); op_jal = int(Op.JAL); op_jr = int(Op.JR)
        op_jalr = int(Op.JALR); op_ret = int(Op.RET)
        op_nop = int(Op.NOP); op_halt = int(Op.HALT)

        while executed < max_instructions:
            if not 0 <= pc < n_code:
                raise MachineError(f"PC out of range: {pc}")
            op, rd, rs1, rs2, imm = code[pc]
            executed += 1
            next_pc = pc + 1

            if op == op_addi:
                if rd:
                    regs[rd] = _wrap(regs[rs1] + imm)
            elif op == op_ld:
                addr = regs[rs1] + imm
                if not 0 <= addr < mem_size:
                    raise MachineError(f"load out of range at pc={pc}: {addr}")
                if rd:
                    regs[rd] = mem[addr]
            elif op == op_st:
                addr = regs[rs1] + imm
                if not 0 <= addr < mem_size:
                    raise MachineError(f"store out of range at pc={pc}: {addr}")
                mem[addr] = regs[rs2]
            elif op == op_add:
                if rd:
                    regs[rd] = _wrap(regs[rs1] + regs[rs2])
            elif op == op_beq or op == op_bne or op == op_blt \
                    or op == op_bge or op == op_ble or op == op_bgt:
                a = regs[rs1]
                b = regs[rs2]
                if op == op_beq:
                    t = a == b
                elif op == op_bne:
                    t = a != b
                elif op == op_blt:
                    t = a < b
                elif op == op_bge:
                    t = a >= b
                elif op == op_ble:
                    t = a <= b
                else:
                    t = a > b
                rec_pc.append(pc)
                rec_kind.append(_K_COND)
                rec_taken.append(t)
                rec_target.append(imm)
                if t:
                    next_pc = imm
            elif op == op_sub:
                if rd:
                    regs[rd] = _wrap(regs[rs1] - regs[rs2])
            elif op == op_li:
                if rd:
                    regs[rd] = _wrap(imm)
            elif op == op_mul:
                if rd:
                    regs[rd] = _wrap(regs[rs1] * regs[rs2])
            elif op == op_muli:
                if rd:
                    regs[rd] = _wrap(regs[rs1] * imm)
            elif op == op_and:
                if rd:
                    regs[rd] = regs[rs1] & regs[rs2]
            elif op == op_or:
                if rd:
                    regs[rd] = regs[rs1] | regs[rs2]
            elif op == op_xor:
                if rd:
                    regs[rd] = regs[rs1] ^ regs[rs2]
            elif op == op_andi:
                if rd:
                    regs[rd] = regs[rs1] & imm
            elif op == op_ori:
                if rd:
                    regs[rd] = regs[rs1] | imm
            elif op == op_xori:
                if rd:
                    regs[rd] = regs[rs1] ^ imm
            elif op == op_sll:
                if rd:
                    regs[rd] = _wrap(regs[rs1] << (regs[rs2] & 63))
            elif op == op_srl:
                if rd:
                    regs[rd] = (regs[rs1] & _WORD_MASK) >> (regs[rs2] & 63)
            elif op == op_slli:
                if rd:
                    regs[rd] = _wrap(regs[rs1] << (imm & 63))
            elif op == op_srli:
                if rd:
                    regs[rd] = (regs[rs1] & _WORD_MASK) >> (imm & 63)
            elif op == op_slt:
                if rd:
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
            elif op == op_slti:
                if rd:
                    regs[rd] = 1 if regs[rs1] < imm else 0
            elif op == op_seq:
                if rd:
                    regs[rd] = 1 if regs[rs1] == regs[rs2] else 0
            elif op == op_div or op == op_mod:
                b = regs[rs2]
                if b == 0:
                    raise MachineError(f"division by zero at pc={pc}")
                a = regs[rs1]
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                if op == op_div:
                    if rd:
                        regs[rd] = _wrap(q)
                else:
                    if rd:
                        regs[rd] = _wrap(a - q * b)
            elif op == op_j:
                rec_pc.append(pc)
                rec_kind.append(_K_JUMP)
                rec_taken.append(True)
                rec_target.append(imm)
                next_pc = imm
            elif op == op_jal:
                regs[1] = pc + 1
                rec_pc.append(pc)
                rec_kind.append(_K_CALL)
                rec_taken.append(True)
                rec_target.append(imm)
                next_pc = imm
            elif op == op_jr or op == op_ret:
                dest = regs[rs1]
                rec_pc.append(pc)
                rec_kind.append(_K_RETURN if op == op_ret else _K_INDIRECT)
                rec_taken.append(True)
                rec_target.append(dest)
                next_pc = dest
            elif op == op_jalr:
                dest = regs[rs1]
                regs[1] = pc + 1
                rec_pc.append(pc)
                rec_kind.append(_K_CALL)
                rec_taken.append(True)
                rec_target.append(dest)
                next_pc = dest
            elif op == op_nop:
                pass
            elif op == op_halt:
                rec_pc.append(pc)
                rec_kind.append(_K_HALT)
                rec_taken.append(False)
                rec_target.append(pc + 1)
                halted = True
                break
            else:
                raise MachineError(f"unknown opcode {op} at pc={pc}")

            pc = next_pc

        if not halted:
            # Budget exhausted: synthesise a HALT record at the next PC so
            # the trace is well terminated (counted as one instruction).
            truncated = True
            rec_pc.append(pc)
            rec_kind.append(_K_HALT)
            rec_taken.append(False)
            rec_target.append(pc + 1)
            executed += 1

        trace = Trace.from_lists(
            entry_pc=entry_pc,
            n_instructions=executed,
            pc=rec_pc,
            kind=rec_kind,
            taken=rec_taken,
            target=rec_target,
            truncated=truncated,
            name=self.program.name,
        )
        return RunResult(trace=trace, instructions=executed, halted=halted)


def run_program(program: Program,
                max_instructions: int = 10_000_000) -> Trace:
    """Convenience wrapper: execute ``program`` and return its trace."""
    return Machine(program).run(max_instructions=max_instructions).trace
