"""The ``REPRO_TRACER`` switch between scalar and vectorized trace capture.

Trace capture has two implementations of the same semantics, mirroring
the ``REPRO_ENGINE`` split of :mod:`repro.core.engine_mode`:

* ``scalar`` — the reference interpreter of :mod:`repro.cpu.machine`,
  kept as the readable ground truth;
* ``fast`` (default) — the compiled tracer of :mod:`repro.cpu.fast`:
  exec-generated superblock steppers plus the batched loop vectorizer of
  :mod:`repro.cpu.vector`, locked bit-exact against the scalar machine
  by the tracer parity suite and the qa differential oracle.

The knob follows the other runtime environment variables: validated
eagerly (a bad value raises :class:`ValueError` naming the variable)
and honoured by :meth:`repro.workloads.base.WorkloadRegistry.trace` and
:meth:`repro.core.config.FetchInput.from_program`.
"""

from __future__ import annotations

from .. import envvars

#: Environment variable selecting the trace-capture implementation.
TRACER_ENV = "REPRO_TRACER"

TRACER_SCALAR = "scalar"
TRACER_FAST = "fast"

#: Accepted values, in display order.
TRACER_MODES = (TRACER_SCALAR, TRACER_FAST)


def tracer_mode() -> str:
    """Selected tracer implementation from ``REPRO_TRACER``.

    Unset or empty defaults to ``fast``.  Anything other than ``scalar``
    or ``fast`` raises a :class:`ValueError` naming the variable.
    """
    raw = envvars.read(TRACER_ENV)
    if raw is None or not raw.strip():
        return TRACER_FAST
    text = raw.strip().lower()
    if text in TRACER_MODES:
        return text
    raise ValueError(
        f"{TRACER_ENV} must be one of {'/'.join(TRACER_MODES)}, "
        f"got {raw!r}")


def use_fast_tracer() -> bool:
    """True when the vectorized tracer should capture traces."""
    return tracer_mode() == TRACER_FAST
