"""Functional CPU: interpreter and trace capture for the tiny ISA."""

from .machine import Machine, MachineError, RunResult, run_program

__all__ = ["Machine", "MachineError", "RunResult", "run_program"]
