"""Functional CPU: interpreter and trace capture for the tiny ISA.

Two tracers share the same semantics: the readable reference
interpreter (:class:`Machine`) and the vectorized tiered tracer
(:class:`FastMachine`), selected at capture points by ``REPRO_TRACER``
(:func:`tracer_mode`).  :func:`capture_machine` returns whichever the
environment selects.
"""

from typing import Union

from .fast import FastMachine, run_program_fast
from .machine import Machine, MachineError, RunResult, run_program
from .tables import CompiledProgram, LoopInfo, compile_program
from .tracer_mode import (TRACER_ENV, TRACER_FAST, TRACER_MODES,
                          TRACER_SCALAR, tracer_mode, use_fast_tracer)
from ..isa.program import Program

__all__ = [
    "Machine", "MachineError", "RunResult", "run_program",
    "FastMachine", "run_program_fast",
    "CompiledProgram", "LoopInfo", "compile_program",
    "TRACER_ENV", "TRACER_FAST", "TRACER_MODES", "TRACER_SCALAR",
    "tracer_mode", "use_fast_tracer", "capture_machine",
]


def capture_machine(program: Program) -> Union[Machine, FastMachine]:
    """The tracer selected by ``REPRO_TRACER``, ready to ``run``."""
    if use_fast_tracer():
        return FastMachine(program)
    return Machine(program)
