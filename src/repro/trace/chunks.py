"""Chunked trace capture: bounded-memory streaming of huge traces.

A paper-scale run (``REPRO_TRACE_LEN`` of 10^8 and beyond) produces tens
of millions of control records.  Materialising them as one
:class:`~repro.trace.record.Trace` — four parallel arrays plus the
Python lists they were accumulated in — costs multiple gigabytes of peak
memory.  This module stores such traces as a sequence of fixed-size
compressed *chunks* inside a single zip container, so that

* **capture** never holds more than one chunk of records (the tracer's
  ``run_streaming`` hands bounded segments to :class:`TraceChunkWriter`,
  which compresses and appends them as it goes), and
* **consumption** walks the chunks in order — block segmentation
  (:func:`repro.trace.blocks.segment_blocks`) and the engine compiler's
  conditional stream (:meth:`ChunkedTrace.cond_stream`) both read one
  chunk at a time.

Container layout (one ``zipfile`` with ``ZIP_DEFLATED`` members):

* ``meta.json`` — capture version, entry PC, instruction/record/chunk
  counts, chunk size, truncation flag and workload name;
* ``<chunk>.pc.npy`` / ``.kind.npy`` / ``.taken.npy`` / ``.target.npy``
  — the record arrays of chunk ``i``, dtypes matching
  :class:`~repro.trace.record.Trace` (int64 / uint8 / bool / int64).

Writes go to a same-directory temporary file that is flushed to stable
storage (``os.fsync``) *before* being renamed into place on
:meth:`TraceChunkWriter.close`, so a capture killed at any point — even
by power loss straddling the rename — leaves either nothing behind the
final name or a complete container, never a torn one.  At worst an
abandoned ``.tmp`` file remains, which readers never open.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..isa.kinds import InstrKind
from .record import CAPTURE_VERSION, Trace

#: Environment variable setting the records-per-chunk granularity.
CHUNK_ENV = "REPRO_TRACE_CHUNK"

#: Default records per chunk (2^20 records ~ 18 MiB uncompressed).
DEFAULT_CHUNK_RECORDS = 1 << 20

#: Zip member holding the container metadata.
_META_MEMBER = "meta.json"

_K_COND = int(InstrKind.COND)
_K_HALT = int(InstrKind.HALT)

#: One chunk of trace records: (pc, kind, taken, target) arrays.
Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def chunk_records() -> int:
    """Records per chunk from ``REPRO_TRACE_CHUNK`` (validated).

    Unset or empty yields :data:`DEFAULT_CHUNK_RECORDS`.  Anything that
    is not a positive integer raises :class:`ValueError` naming the
    variable.
    """
    from .. import envvars

    raw = envvars.read(CHUNK_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_CHUNK_RECORDS
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"{CHUNK_ENV} must be a positive integer, got {raw!r}") \
            from None
    if value < 1:
        raise ValueError(
            f"{CHUNK_ENV} must be a positive integer, got {value}")
    return value


def _member_names(index: int) -> Tuple[str, str, str, str]:
    base = f"{index:06d}"
    return (f"{base}.pc.npy", f"{base}.kind.npy",
            f"{base}.taken.npy", f"{base}.target.npy")


class TraceChunkWriter:
    """A :data:`~repro.cpu.fast.RecordSink` that spools chunks to disk.

    Feed it record segments (directly usable as the sink of
    :meth:`repro.cpu.fast.FastMachine.run_streaming`), then call
    :meth:`close` with the final instruction count.  Peak memory is one
    chunk of records regardless of trace length.

    Usable as a context manager: leaving the ``with`` block without a
    :meth:`close` aborts the capture and removes the temporary file.
    """

    def __init__(self, path: Union[str, Path],
                 entry_pc: int, name: str = "",
                 records_per_chunk: Optional[int] = None) -> None:
        self.path = Path(path)
        self.entry_pc = int(entry_pc)
        self.name = name
        self.records_per_chunk = (chunk_records()
                                  if records_per_chunk is None
                                  else int(records_per_chunk))
        if self.records_per_chunk < 1:
            raise ValueError("records_per_chunk must be positive")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.tmp")
        self._zf: Optional[zipfile.ZipFile] = zipfile.ZipFile(
            self._tmp, "w", zipfile.ZIP_DEFLATED)
        self._parts: List[Chunk] = []
        self._buffered = 0
        self.n_records = 0
        self.n_chunks = 0
        self._last_kind = -1

    # -- RecordSink protocol --------------------------------------------

    def __call__(self, pc: np.ndarray, kind: np.ndarray,
                 taken: np.ndarray, target: np.ndarray) -> None:
        """Append one record segment, spilling full chunks to disk."""
        n = int(pc.shape[0])
        if not (kind.shape[0] == taken.shape[0] == target.shape[0] == n):
            raise ValueError("record segment arrays must have equal length")
        if n == 0:
            return
        self._parts.append((np.asarray(pc, dtype=np.int64),
                            np.asarray(kind, dtype=np.uint8),
                            np.asarray(taken, dtype=bool),
                            np.asarray(target, dtype=np.int64)))
        self._buffered += n
        self.n_records += n
        self._last_kind = int(kind[-1])
        while self._buffered >= self.records_per_chunk:
            self._spill(self.records_per_chunk)

    # -- persistence ----------------------------------------------------

    def _gather(self) -> Chunk:
        if len(self._parts) == 1:
            merged = self._parts[0]
        else:
            merged = (np.concatenate([p[0] for p in self._parts]),
                      np.concatenate([p[1] for p in self._parts]),
                      np.concatenate([p[2] for p in self._parts]),
                      np.concatenate([p[3] for p in self._parts]))
        return merged

    def _spill(self, count: int) -> None:
        merged = self._gather()
        head = tuple(a[:count] for a in merged)
        rest = tuple(a[count:] for a in merged)
        self._parts = [rest] if rest[0].shape[0] else []
        self._buffered -= count
        self._write_chunk(head)

    def _write_chunk(self, chunk) -> None:
        assert self._zf is not None
        names = _member_names(self.n_chunks)
        for member, array in zip(names, chunk):
            with self._zf.open(member, "w", force_zip64=True) as fp:
                np.lib.format.write_array(fp, array)
        self.n_chunks += 1

    def close(self, n_instructions: int, truncated: bool = False) -> None:
        """Flush remaining records, write metadata, rename into place."""
        if self._zf is None:
            raise ValueError("TraceChunkWriter already closed")
        if self.n_records == 0:
            self.abort()
            raise ValueError("a trace must contain at least the HALT record")
        if self._last_kind != _K_HALT:
            self.abort()
            raise ValueError("trace must end with a HALT record")
        if self._buffered:
            self._spill(self._buffered)
        meta = {
            "capture_version": CAPTURE_VERSION,
            "entry_pc": self.entry_pc,
            "n_instructions": int(n_instructions),
            "n_records": self.n_records,
            "n_chunks": self.n_chunks,
            "records_per_chunk": self.records_per_chunk,
            "truncated": bool(truncated),
            "name": self.name,
        }
        self._zf.writestr(_META_MEMBER, json.dumps(meta, sort_keys=True))
        self._zf.close()
        self._zf = None
        # Durability: the container's bytes must be on stable storage
        # before the rename publishes them — otherwise a crash after the
        # rename but before writeback leaves a torn file behind the
        # *final* name, which no reader can distinguish from corruption.
        with open(self._tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(self._tmp, self.path)
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return  # platform without openable directories: best effort
        try:
            os.fsync(dir_fd)
        except OSError:
            pass  # the rename itself is still atomic
        finally:
            os.close(dir_fd)

    def abort(self) -> None:
        """Discard the capture, removing the temporary container."""
        if self._zf is not None:
            self._zf.close()
            self._zf = None
        self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "TraceChunkWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._zf is not None:
            self.abort()


class ChunkedTrace:
    """Read-side view of a chunked trace container.

    Duck-compatible with :class:`~repro.trace.record.Trace` everywhere
    the pipeline needs it: scalar metadata (``entry_pc``,
    ``n_instructions``, ``n_records``, ``truncated``, ``name``), chunked
    record access (:meth:`chunk`, :meth:`iter_chunks`) for streaming
    consumers, and the engine compiler's :meth:`cond_stream`.  The full
    record arrays (``pc`` and friends) are also available but
    materialise lazily — streaming consumers never touch them, so a
    10^8-instruction capture stays within one chunk of memory.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._zf: Optional[zipfile.ZipFile] = zipfile.ZipFile(self.path)
        try:
            raw = self._zf.read(_META_MEMBER)
        except KeyError:
            self.close()
            raise ValueError(
                f"{self.path.name}: not a chunked trace (no meta.json)") \
                from None
        meta = json.loads(raw)
        version = int(meta.get("capture_version", 1))
        if version != CAPTURE_VERSION:
            self.close()
            raise ValueError(
                f"{self.path.name}: capture version {version}, "
                f"expected {CAPTURE_VERSION}")
        self.version = version
        self.entry_pc = int(meta["entry_pc"])
        self.n_instructions = int(meta["n_instructions"])
        self._n_records = int(meta["n_records"])
        self.n_chunks = int(meta["n_chunks"])
        self.records_per_chunk = int(meta["records_per_chunk"])
        self.truncated = bool(meta["truncated"])
        self.name = str(meta["name"])
        self._cond: Optional[Tuple[np.ndarray, np.ndarray,
                                   np.ndarray]] = None
        self._full: Optional[Chunk] = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the underlying zip handle (reads fail afterwards)."""
        if self._zf is not None:
            self._zf.close()
            self._zf = None

    def __enter__(self) -> "ChunkedTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- metadata -------------------------------------------------------

    def __len__(self) -> int:
        return self._n_records

    @property
    def n_records(self) -> int:
        """Number of explicit control records (including HALT)."""
        return self._n_records

    @property
    def n_branches(self) -> int:
        """Executed control-transfer instructions (HALT excluded)."""
        return self._n_records - 1

    # -- chunked access -------------------------------------------------

    def chunk(self, index: int) -> Chunk:
        """The ``index``-th record chunk as four parallel arrays."""
        if self._zf is None:
            raise ValueError(f"{self.path.name}: chunked trace is closed")
        if not 0 <= index < self.n_chunks:
            raise IndexError(
                f"chunk {index} out of range ({self.n_chunks} chunks)")
        names = _member_names(index)
        arrays = []
        for member in names:
            with self._zf.open(member) as fp:
                arrays.append(np.lib.format.read_array(
                    fp, allow_pickle=False))
        pc, kind, taken, target = arrays
        return (pc.astype(np.int64, copy=False),
                kind.astype(np.uint8, copy=False),
                taken.astype(bool, copy=False),
                target.astype(np.int64, copy=False))

    def iter_chunks(self) -> Iterator[Chunk]:
        """Yield every record chunk in execution order."""
        for index in range(self.n_chunks):
            yield self.chunk(index)

    def cond_stream(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The conditional-branch stream, built one chunk at a time.

        Returns ``(cond_prefix, cond_pc, cond_taken)`` where
        ``cond_prefix[r]`` counts conditionals among records ``[0, r)``
        — exactly the arrays the engine compiler derives from a
        materialised trace's ``cond_mask``, without the four full record
        arrays ever coexisting in memory.
        """
        if self._cond is None:
            prefix = np.zeros(self._n_records + 1, dtype=np.int64)
            pc_parts: List[np.ndarray] = []
            taken_parts: List[np.ndarray] = []
            base = np.int64(0)
            pos = 0
            for pc, kind, taken, _target in self.iter_chunks():
                mask = kind == _K_COND
                n = pc.shape[0]
                np.cumsum(mask, out=prefix[pos + 1:pos + 1 + n])
                prefix[pos + 1:pos + 1 + n] += base
                base = prefix[pos + n]
                pos += n
                pc_parts.append(pc[mask])
                taken_parts.append(taken[mask])
            self._cond = (
                prefix,
                np.concatenate(pc_parts) if pc_parts
                else np.zeros(0, dtype=np.int64),
                np.concatenate(taken_parts) if taken_parts
                else np.zeros(0, dtype=bool),
            )
        return self._cond

    @property
    def n_cond(self) -> int:
        """Number of executed conditional branches."""
        return int(self.cond_stream()[0][-1])

    # -- materialised compatibility surface -----------------------------
    #
    # Scalar consumers (the reference engines' BlockCursor) index the
    # full record arrays; these properties satisfy them by materialising
    # once.  Streaming consumers never touch them.

    def _materialise(self) -> Chunk:
        if self._full is None:
            chunks = list(self.iter_chunks())
            self._full = (
                np.concatenate([c[0] for c in chunks]),
                np.concatenate([c[1] for c in chunks]),
                np.concatenate([c[2] for c in chunks]),
                np.concatenate([c[3] for c in chunks]),
            )
        return self._full

    @property
    def pc(self) -> np.ndarray:
        """Record addresses (materialises the full array)."""
        return self._materialise()[0]

    @property
    def kind(self) -> np.ndarray:
        """Record kinds (materialises the full array)."""
        return self._materialise()[1]

    @property
    def taken(self) -> np.ndarray:
        """Record directions (materialises the full array)."""
        return self._materialise()[2]

    @property
    def target(self) -> np.ndarray:
        """Record targets (materialises the full array)."""
        return self._materialise()[3]

    @property
    def cond_mask(self) -> np.ndarray:
        """Boolean mask over records selecting conditional branches."""
        return self.kind == _K_COND

    def records(self) -> Iterator[Tuple[int, int, bool, int]]:
        """Iterate ``(pc, kind, taken, target)`` without materialising."""
        for pc, kind, taken, target in self.iter_chunks():
            for i in range(pc.shape[0]):
                yield (int(pc[i]), int(kind[i]), bool(taken[i]),
                       int(target[i]))

    def materialize(self) -> Trace:
        """The equivalent in-memory :class:`Trace` (for small traces)."""
        pc, kind, taken, target = self._materialise()
        return Trace(
            entry_pc=self.entry_pc,
            n_instructions=self.n_instructions,
            pc=pc, kind=kind, taken=taken, target=target,
            truncated=self.truncated,
            name=self.name,
        )
