"""Fetch-block segmentation of a correct-path trace.

A fetch block is a run of sequential instructions ending at the first *taken*
control transfer, at the geometry limit (block width or line end), or at
HALT.  Not-taken conditional branches do **not** end a block — predicting
several of them per block is the whole point of the paper's blocked PHT.

Because the trace is the correct path and the paper assumes perfect recovery
(BBR entries always available, perfect i-cache), block boundaries depend only
on the trace and the cache geometry, never on predictor state.  Segmentation
therefore runs once per (trace, geometry) and every engine replays the same
block stream, charging penalty cycles for its own mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..icache.geometry import CacheGeometry
from ..isa.kinds import InstrKind
from .record import Trace

#: exit_kind value for a block that fell through at the geometry limit.
EXIT_FALLTHROUGH = 0


@dataclass
class BlockStream:
    """The segmented fetch blocks of one trace under one geometry.

    All arrays have one entry per block, in fetch order:

    Attributes:
        start: first instruction address of the block.
        n_instr: valid instructions in the block (the paper's IPB averages
            over this).
        exit_kind: :class:`InstrKind` of the taken exit transfer,
            ``EXIT_FALLTHROUGH`` (0) when the block ended at the geometry
            limit, or ``InstrKind.HALT`` for the final block.
        exit_target: address control went to (next block start); for
            fall-through blocks this is the next sequential address.
        first_rec/n_recs: window into the trace's record arrays covering
            this block's control records (not-taken conditionals plus the
            taken exit, if any).
    """

    trace: Trace
    geometry: CacheGeometry
    start: np.ndarray
    n_instr: np.ndarray
    exit_kind: np.ndarray
    exit_target: np.ndarray
    first_rec: np.ndarray
    n_recs: np.ndarray

    def __len__(self) -> int:
        return len(self.start)

    @property
    def n_blocks(self) -> int:
        """Number of fetch blocks in the stream."""
        return len(self.start)

    @property
    def instructions(self) -> int:
        """Total instructions across all blocks (== trace length)."""
        return int(self.n_instr.sum())

    @property
    def ipb(self) -> float:
        """Mean instructions per block (the paper's IPB metric)."""
        return float(self.n_instr.mean()) if len(self.start) else 0.0


def segment_blocks(trace, geometry: CacheGeometry) -> BlockStream:
    """Split ``trace`` into fetch blocks under ``geometry``.

    Accepts both a materialised :class:`~repro.trace.record.Trace` and a
    :class:`~repro.trace.chunks.ChunkedTrace`; the latter is walked one
    chunk at a time, so peak memory during segmentation of a huge
    capture is one chunk of records plus the block arrays themselves.
    """
    iter_chunks = getattr(trace, "iter_chunks", None)
    if iter_chunks is not None:
        chunks = iter_chunks()
    else:
        chunks = iter([(trace.pc, trace.kind, trace.taken, trace.target)])
    arrays = _segment_stream(trace.entry_pc, chunks, geometry)
    return BlockStream(trace=trace, geometry=geometry, **arrays)


def _segment_stream(entry_pc: int, chunks, geometry: CacheGeometry):
    """Core segmentation loop over an iterator of record chunks.

    The record pointer only ever moves forward, so the stream is
    consumed through a cursor over the current chunk (as plain Python
    lists) plus a running base offset — the chunk boundary check is one
    extra comparison per record peek.
    """
    k_halt = int(InstrKind.HALT)

    t_pc: list = []
    t_kind: list = []
    t_taken: list = []
    t_target: list = []
    rec_base = 0       # global record index of t_pc[0]
    n_local = 0        # records in the current chunk
    i = 0              # cursor within the current chunk

    b_start = []
    b_n = []
    b_exit_kind = []
    b_exit_target = []
    b_first_rec = []
    b_n_recs = []

    block_limit = geometry.block_limit
    cur = entry_pc
    done = False
    while not done:
        limit = block_limit(cur)
        geo_end = cur + limit - 1
        first_rec = rec_base + i
        # Defaults: fall through at the geometry limit.
        n = limit
        exit_kind = EXIT_FALLTHROUGH
        next_start = geo_end + 1
        while True:
            if i == n_local:
                # The trace always ends with HALT, which terminates the
                # outer loop before the cursor can run past the stream,
                # so the iterator cannot be exhausted here.
                rec_base += n_local
                i = 0
                n_local = 0
                while not n_local:
                    c_pc, c_kind, c_taken, c_target = next(chunks)
                    t_pc = c_pc.tolist()
                    t_kind = c_kind.tolist()
                    t_taken = c_taken.tolist()
                    t_target = c_target.tolist()
                    n_local = len(t_pc)
            pc_r = t_pc[i]
            if pc_r > geo_end:
                break  # next control event is beyond this block
            kind_r = t_kind[i]
            if kind_r == k_halt:
                n = pc_r - cur + 1
                exit_kind = k_halt
                next_start = pc_r + 1
                i += 1
                done = True
                break
            if t_taken[i]:
                n = pc_r - cur + 1
                exit_kind = kind_r
                next_start = t_target[i]
                i += 1
                break
            # Not-taken conditional inside the block.
            i += 1
            if pc_r == geo_end:
                break  # block ends exactly at a not-taken conditional
        b_start.append(cur)
        b_n.append(n)
        b_exit_kind.append(exit_kind)
        b_exit_target.append(next_start)
        b_first_rec.append(first_rec)
        b_n_recs.append(rec_base + i - first_rec)
        cur = next_start

    return dict(
        start=np.asarray(b_start, dtype=np.int64),
        n_instr=np.asarray(b_n, dtype=np.int64),
        exit_kind=np.asarray(b_exit_kind, dtype=np.uint8),
        exit_target=np.asarray(b_exit_target, dtype=np.int64),
        first_rec=np.asarray(b_first_rec, dtype=np.int64),
        n_recs=np.asarray(b_n_recs, dtype=np.int64),
    )
