"""Fetch-block segmentation of a correct-path trace.

A fetch block is a run of sequential instructions ending at the first *taken*
control transfer, at the geometry limit (block width or line end), or at
HALT.  Not-taken conditional branches do **not** end a block — predicting
several of them per block is the whole point of the paper's blocked PHT.

Because the trace is the correct path and the paper assumes perfect recovery
(BBR entries always available, perfect i-cache), block boundaries depend only
on the trace and the cache geometry, never on predictor state.  Segmentation
therefore runs once per (trace, geometry) and every engine replays the same
block stream, charging penalty cycles for its own mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..icache.geometry import CacheGeometry
from ..isa.kinds import InstrKind
from .record import Trace

#: exit_kind value for a block that fell through at the geometry limit.
EXIT_FALLTHROUGH = 0


@dataclass
class BlockStream:
    """The segmented fetch blocks of one trace under one geometry.

    All arrays have one entry per block, in fetch order:

    Attributes:
        start: first instruction address of the block.
        n_instr: valid instructions in the block (the paper's IPB averages
            over this).
        exit_kind: :class:`InstrKind` of the taken exit transfer,
            ``EXIT_FALLTHROUGH`` (0) when the block ended at the geometry
            limit, or ``InstrKind.HALT`` for the final block.
        exit_target: address control went to (next block start); for
            fall-through blocks this is the next sequential address.
        first_rec/n_recs: window into the trace's record arrays covering
            this block's control records (not-taken conditionals plus the
            taken exit, if any).
    """

    trace: Trace
    geometry: CacheGeometry
    start: np.ndarray
    n_instr: np.ndarray
    exit_kind: np.ndarray
    exit_target: np.ndarray
    first_rec: np.ndarray
    n_recs: np.ndarray

    def __len__(self) -> int:
        return len(self.start)

    @property
    def n_blocks(self) -> int:
        """Number of fetch blocks in the stream."""
        return len(self.start)

    @property
    def instructions(self) -> int:
        """Total instructions across all blocks (== trace length)."""
        return int(self.n_instr.sum())

    @property
    def ipb(self) -> float:
        """Mean instructions per block (the paper's IPB metric)."""
        return float(self.n_instr.mean()) if len(self.start) else 0.0


def segment_blocks(trace: Trace, geometry: CacheGeometry) -> BlockStream:
    """Split ``trace`` into fetch blocks under ``geometry``."""
    k_halt = int(InstrKind.HALT)

    t_pc = trace.pc.tolist()
    t_kind = trace.kind.tolist()
    t_taken = trace.taken.tolist()
    t_target = trace.target.tolist()

    b_start = []
    b_n = []
    b_exit_kind = []
    b_exit_target = []
    b_first_rec = []
    b_n_recs = []

    block_limit = geometry.block_limit
    r = 0
    cur = trace.entry_pc
    done = False
    while not done:
        limit = block_limit(cur)
        geo_end = cur + limit - 1
        first_rec = r
        # Defaults: fall through at the geometry limit.
        n = limit
        exit_kind = EXIT_FALLTHROUGH
        next_start = geo_end + 1
        while True:
            pc_r = t_pc[r]
            if pc_r > geo_end:
                break  # next control event is beyond this block
            kind_r = t_kind[r]
            if kind_r == k_halt:
                n = pc_r - cur + 1
                exit_kind = k_halt
                next_start = pc_r + 1
                r += 1
                done = True
                break
            if t_taken[r]:
                n = pc_r - cur + 1
                exit_kind = kind_r
                next_start = t_target[r]
                r += 1
                break
            # Not-taken conditional inside the block.
            r += 1
            if pc_r == geo_end:
                break  # block ends exactly at a not-taken conditional
        b_start.append(cur)
        b_n.append(n)
        b_exit_kind.append(exit_kind)
        b_exit_target.append(next_start)
        b_first_rec.append(first_rec)
        b_n_recs.append(r - first_rec)
        cur = next_start

    return BlockStream(
        trace=trace,
        geometry=geometry,
        start=np.asarray(b_start, dtype=np.int64),
        n_instr=np.asarray(b_n, dtype=np.int64),
        exit_kind=np.asarray(b_exit_kind, dtype=np.uint8),
        exit_target=np.asarray(b_exit_target, dtype=np.int64),
        first_rec=np.asarray(b_first_rec, dtype=np.int64),
        n_recs=np.asarray(b_n_recs, dtype=np.int64),
    )
