"""Descriptive statistics for traces and block streams.

Used by tests (to validate that workloads have SPEC-like control-flow
character) and by the examples/benchmarks when printing workload summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..isa.kinds import InstrKind
from .record import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    name: str
    n_instructions: int
    n_branches: int          #: executed control transfers (HALT excluded)
    n_cond: int              #: executed conditional branches
    cond_taken_rate: float   #: fraction of conditionals that were taken
    branch_density: float    #: control transfers per instruction
    avg_basic_block: float   #: instructions per *taken-transfer-delimited* run
    kind_counts: Dict[str, int]

    def __str__(self) -> str:
        lines = [
            f"trace {self.name or '<unnamed>'}:",
            f"  instructions      {self.n_instructions}",
            f"  control transfers {self.n_branches} "
            f"({100.0 * self.branch_density:.1f}% of instructions)",
            f"  conditionals      {self.n_cond} "
            f"(taken {100.0 * self.cond_taken_rate:.1f}%)",
            f"  avg run length    {self.avg_basic_block:.2f} instructions "
            f"between taken transfers",
        ]
        for kind, count in sorted(self.kind_counts.items()):
            lines.append(f"    {kind:<10s} {count}")
        return "\n".join(lines)


def trace_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    kinds = trace.kind
    taken = trace.taken
    halt_mask = kinds == int(InstrKind.HALT)
    branch_mask = ~halt_mask
    cond_mask = kinds == int(InstrKind.COND)

    n_cond = int(np.count_nonzero(cond_mask))
    n_branches = int(np.count_nonzero(branch_mask))
    cond_taken = int(np.count_nonzero(taken & cond_mask))
    n_taken = int(np.count_nonzero(taken))

    kind_counts = {}
    for kind in InstrKind:
        count = int(np.count_nonzero(kinds == int(kind)))
        if count:
            kind_counts[kind.name.lower()] = count

    return TraceStats(
        name=trace.name,
        n_instructions=trace.n_instructions,
        n_branches=n_branches,
        n_cond=n_cond,
        cond_taken_rate=(cond_taken / n_cond) if n_cond else 0.0,
        branch_density=(n_branches / trace.n_instructions)
        if trace.n_instructions else 0.0,
        avg_basic_block=(trace.n_instructions / (n_taken + 1)),
        kind_counts=kind_counts,
    )
