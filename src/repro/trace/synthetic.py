"""Synthetic program generator.

Builds *random but well-formed* programs with seeded pseudo-random control
flow: nested counted loops, data-dependent conditionals over LCG data, calls
and early returns.  Running them through the interpreter yields traces with
tunable branch character — used by tests (including property-based tests) and
as a lightweight stand-in when the full SPEC95-analog suite is overkill.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..isa.builder import ProgramBuilder
from ..isa.program import Program


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters for :func:`synthetic_program`.

    Attributes:
        seed: PRNG seed (determinism).
        n_functions: helper functions generated besides ``main``.
        loop_depth: maximum nesting of counted loops.
        irregularity: 0..1; probability weight of data-dependent branches
            versus counted loops (high values mimic integer codes, low
            values floating-point codes).
        body_ops: straight-line ALU instructions emitted per block of work
            (controls basic-block sizes).
        iterations: trip count scale of the generated loops.
    """

    seed: int = 0
    n_functions: int = 3
    loop_depth: int = 2
    irregularity: float = 0.5
    body_ops: int = 4
    iterations: int = 12


def synthetic_program(spec: SyntheticSpec = SyntheticSpec()) -> Program:
    """Generate a deterministic pseudo-random program from ``spec``."""
    rng = random.Random(spec.seed)
    b = ProgramBuilder(name=f"synthetic-{spec.seed}", data_size=1 << 14)

    data_regs = ["r10", "r11", "r12", "r13"]
    state_reg = "r20"

    def emit_body() -> None:
        for _ in range(max(1, spec.body_ops + rng.randint(-1, 2))):
            op = rng.choice(["add", "xor", "sub", "and_"])
            dst = rng.choice(data_regs)
            a = rng.choice(data_regs)
            c = rng.choice(data_regs)
            getattr(b.asm, op)(dst, a, c)

    def emit_data_branch() -> None:
        b.lcg_step(state_reg)
        b.asm.andi("r21", state_reg, 7)
        threshold = rng.randint(0, 7)
        with b.if_("lt", "r21", _imm("r22", threshold)):
            emit_body()

    def _imm(reg: str, value: int) -> str:
        b.asm.li(reg, value)
        return reg

    def emit_block(depth: int) -> None:
        emit_body()
        if depth <= 0:
            return
        if rng.random() < spec.irregularity:
            emit_data_branch()
        counter = f"r{4 + depth}"
        trip = max(2, spec.iterations + rng.randint(-3, 3))
        with b.for_range(counter, 0, trip):
            emit_body()
            if rng.random() < spec.irregularity:
                emit_data_branch()
            if depth > 1 and rng.random() < 0.6:
                emit_block(depth - 1)

    func_names = [f"helper_{i}" for i in range(spec.n_functions)]
    for name in func_names:
        with b.function(name):
            emit_block(max(1, spec.loop_depth - 1))

    with b.function("main"):
        b.asm.li(state_reg, spec.seed * 2654435761 % (1 << 31) or 1)
        for reg_index, reg in enumerate(data_regs):
            b.asm.li(reg, reg_index + 1)
        with b.for_range("r3", 0, max(2, spec.iterations // 2)):
            emit_block(spec.loop_depth)
            for name in func_names:
                if rng.random() < 0.7:
                    b.call(name)

    return b.build()
