"""Trace infrastructure: records, segmentation, statistics, synthesis."""

from .blocks import EXIT_FALLTHROUGH, BlockStream, segment_blocks
from .record import Trace
from .stats import TraceStats, trace_stats
from .synthetic import SyntheticSpec, synthetic_program

__all__ = [
    "EXIT_FALLTHROUGH",
    "BlockStream",
    "SyntheticSpec",
    "Trace",
    "TraceStats",
    "segment_blocks",
    "synthetic_program",
    "trace_stats",
]
