"""Dynamic trace representation.

A trace is the *correct-path* instruction stream of one program run.  Because
instructions between control transfers are sequential, only control-flow
records are stored explicitly: each record is ``(pc, kind, taken, target)``
for a conditional branch (taken or not), jump, call, return, indirect jump,
or the final HALT.  Straight-line instructions are implied by PC arithmetic,
which keeps traces compact and block segmentation fast.

This mirrors what the paper's fetch mechanisms can observe through Shade:
dynamic PCs, branch types, directions and targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Tuple, Union

import numpy as np

from ..isa.kinds import InstrKind

#: Version stamp of the trace-capture pipeline, embedded in every saved
#: trace artifact (flat ``.npz`` and chunked containers alike).  Version
#: 1 is the unstamped scalar-era format; version 2 introduced the tiered
#: fast tracer and chunked capture.  Loading an artifact with a
#: different version raises :class:`ValueError` — the cache layer
#: translates that into quarantine-and-recompute, so a stale capture
#: can never be served as current.
CAPTURE_VERSION = 2


@dataclass
class Trace:
    """A compressed correct-path trace.

    Attributes:
        entry_pc: address of the first executed instruction.
        n_instructions: total executed instructions (including the final
            HALT record).
        pc: ``int64`` array of control-record addresses, in execution order.
        kind: ``uint8`` array of :class:`InstrKind` values per record.
        taken: ``bool`` array; conditional branches may be False, every
            other transfer kind is True, HALT is False.
        target: ``int64`` array; the address control went to when taken
            (unused for not-taken records).
        truncated: True when the run hit an instruction budget rather than
            executing HALT (a HALT record is synthesised either way so the
            trace is always well terminated).
        name: optional workload name.
    """

    entry_pc: int
    n_instructions: int
    pc: np.ndarray
    kind: np.ndarray
    taken: np.ndarray
    target: np.ndarray
    truncated: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        n = len(self.pc)
        if not (len(self.kind) == len(self.taken) == len(self.target) == n):
            raise ValueError("trace arrays must have equal length")
        if n == 0:
            raise ValueError("a trace must contain at least the HALT record")
        if int(self.kind[-1]) != int(InstrKind.HALT):
            raise ValueError("trace must end with a HALT record")

    def __len__(self) -> int:
        return len(self.pc)

    @property
    def n_records(self) -> int:
        """Number of explicit control records (including HALT)."""
        return len(self.pc)

    @property
    def n_branches(self) -> int:
        """Executed control-transfer instructions (HALT excluded)."""
        return len(self.pc) - 1

    @property
    def cond_mask(self) -> np.ndarray:
        """Boolean mask over records selecting conditional branches."""
        return self.kind == int(InstrKind.COND)

    @property
    def n_cond(self) -> int:
        """Number of executed conditional branches."""
        return int(np.count_nonzero(self.cond_mask))

    def records(self) -> Iterator[Tuple[int, int, bool, int]]:
        """Iterate ``(pc, kind, taken, target)`` tuples in execution order."""
        pcs = self.pc
        kinds = self.kind
        takens = self.taken
        targets = self.target
        for i in range(len(pcs)):
            yield int(pcs[i]), int(kinds[i]), bool(takens[i]), int(targets[i])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to an ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            capture_version=np.int64(CAPTURE_VERSION),
            entry_pc=np.int64(self.entry_pc),
            n_instructions=np.int64(self.n_instructions),
            pc=self.pc,
            kind=self.kind,
            taken=self.taken,
            target=self.target,
            truncated=np.bool_(self.truncated),
            name=np.str_(self.name),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`.

        Raises :class:`ValueError` when the artifact was captured by a
        different pipeline version (including unstamped scalar-era
        files) — callers treat that exactly like corruption.
        """
        source = Path(path)
        with np.load(source) as data:
            version = (int(data["capture_version"])
                       if "capture_version" in data.files else 1)
            if version != CAPTURE_VERSION:
                raise ValueError(
                    f"{source.name}: capture version {version}, "
                    f"expected {CAPTURE_VERSION}")
            return cls(
                entry_pc=int(data["entry_pc"]),
                n_instructions=int(data["n_instructions"]),
                pc=data["pc"].astype(np.int64),
                kind=data["kind"].astype(np.uint8),
                taken=data["taken"].astype(bool),
                target=data["target"].astype(np.int64),
                truncated=bool(data["truncated"]),
                name=str(data["name"]),
            )

    @classmethod
    def from_lists(cls, entry_pc, n_instructions, pc, kind, taken, target,
                   truncated=False, name="") -> "Trace":
        """Build a trace from Python lists (used by the tracer)."""
        return cls(
            entry_pc=int(entry_pc),
            n_instructions=int(n_instructions),
            pc=np.asarray(pc, dtype=np.int64),
            kind=np.asarray(kind, dtype=np.uint8),
            taken=np.asarray(taken, dtype=bool),
            target=np.asarray(target, dtype=np.int64),
            truncated=truncated,
            name=name,
        )
