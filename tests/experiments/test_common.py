"""Experiment plumbing: aggregation and table formatting."""

import pytest

from repro.core import FetchStats, PenaltyKind
from repro.experiments import SuiteAggregate, format_table
from repro.experiments.common import SUITES, suite_inputs
from repro.icache import CacheGeometry


def make_stats(instructions, blocks, branches, base, penalties):
    stats = FetchStats(n_instructions=instructions, n_blocks=blocks,
                       n_branches=branches, n_cond=branches,
                       base_cycles=base)
    for kind, cycles in penalties.items():
        stats.charge(kind, cycles)
    return stats


class TestSuiteAggregate:
    def test_totals_accumulate(self):
        agg = SuiteAggregate()
        agg.add("a", make_stats(100, 20, 10, 10,
                                {PenaltyKind.COND: 5}))
        agg.add("b", make_stats(200, 40, 30, 20,
                                {PenaltyKind.MISSELECT: 5}))
        assert agg.n_instructions == 300
        assert agg.n_blocks == 60
        assert agg.n_branches == 40
        assert agg.fetch_cycles == (10 + 5) + (20 + 5)
        assert agg.penalty_cycles == 10

    def test_derived_metrics(self):
        agg = SuiteAggregate()
        agg.add("a", make_stats(100, 20, 10, 10, {PenaltyKind.COND: 10}))
        assert agg.ipc_f == pytest.approx(100 / 20)
        assert agg.bep == pytest.approx(1.0)
        assert agg.ipb == pytest.approx(5.0)

    def test_penalty_share_and_bep(self):
        agg = SuiteAggregate()
        agg.add("a", make_stats(100, 20, 10, 10,
                                {PenaltyKind.COND: 6,
                                 PenaltyKind.MISSELECT: 2}))
        assert agg.penalty_share(PenaltyKind.COND) == pytest.approx(0.75)
        assert agg.penalty_bep(PenaltyKind.COND) == pytest.approx(0.6)

    def test_empty_aggregate_is_zero(self):
        agg = SuiteAggregate()
        assert agg.ipc_f == 0.0
        assert agg.bep == 0.0
        assert agg.ipb == 0.0
        assert agg.penalty_share(PenaltyKind.COND) == 0.0

    def test_per_program_retained(self):
        agg = SuiteAggregate()
        stats = make_stats(1, 1, 1, 1, {})
        agg.add("swim", stats)
        assert agg.per_program["swim"] is stats


class TestSuiteInputs:
    def test_yields_whole_suite(self):
        geometry = CacheGeometry.normal(8)
        names = [name for name, _ in
                 suite_inputs("int", geometry, 5_000)]
        assert names == SUITES["int"]

    def test_inputs_carry_geometry(self):
        geometry = CacheGeometry.extended(8)
        for _, fi in suite_inputs("fp", geometry, 5_000):
            assert fi.geometry == geometry
            break


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(["a", "long"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_contains_all_cells(self):
        text = format_table(["h1", "h2"], [["x", "y"]])
        for cell in ("h1", "h2", "x", "y"):
            assert cell in text
