"""Experiment runners produce paper-shaped results on small budgets.

These are integration tests over the whole stack: workloads -> traces ->
engines -> aggregation.  Budgets are small to stay fast; the assertions
check *shapes* (orderings, trends), which is exactly what the reproduction
claims.
"""

import pytest

from repro.core import PenaltyKind
from repro.experiments import (
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_table5,
    format_table6,
    format_table7,
    instruction_budget,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_multi_block_extrapolation,
    run_table5,
    run_table6,
    run_table7,
)

BUDGET = 50_000


class TestBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_LEN", raising=False)
        assert instruction_budget() == 120_000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "55000")
        assert instruction_budget() == 55_000

    def test_too_small_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "10")
        with pytest.raises(ValueError, match="REPRO_TRACE_LEN"):
            instruction_budget()

    @pytest.mark.parametrize("raw", ["lots", "1e5", "120k", ""])
    def test_non_numeric_names_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE_LEN", raw)
        with pytest.raises(ValueError, match="REPRO_TRACE_LEN"):
            instruction_budget()


class TestFig6:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig6(history_lengths=(6, 10), budget=BUDGET)

    def test_covers_both_suites(self, rows):
        assert {r.suite for r in rows} == {"int", "fp"}

    def test_blocked_close_to_scalar(self, rows):
        """The paper's headline: accuracies essentially equal."""
        for row in rows:
            assert abs(row.improvement) < 0.01, row

    def test_fp_more_accurate_than_int(self, rows):
        by = {(r.suite, r.history_length): r for r in rows}
        assert by[("fp", 10)].blocked_rate < by[("int", 10)].blocked_rate

    def test_longer_history_not_worse(self, rows):
        by = {(r.suite, r.history_length): r for r in rows}
        for suite in ("int", "fp"):
            assert by[(suite, 10)].blocked_rate <= \
                by[(suite, 6)].blocked_rate + 0.005

    def test_formatting(self, rows):
        text = format_fig6(rows)
        assert "blocked miss" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig7(sizes=(1, 4, 64), budget=BUDGET)

    def test_bit_share_falls_with_size(self, rows):
        for suite in ("int", "fp"):
            shares = [r.bit_share_of_bep for r in rows
                      if r.suite == suite]
            assert shares[0] > shares[-1]
            assert shares == sorted(shares, reverse=True)

    def test_ipc_rises_with_size(self, rows):
        for suite in ("int", "fp"):
            ipcs = [r.ipc_f for r in rows if r.suite == suite]
            assert ipcs[-1] > ipcs[0]

    def test_small_tables_dominate_bep(self, rows):
        smallest = [r for r in rows if r.bit_entries == 1]
        assert all(r.bit_share_of_bep > 0.3 for r in smallest)

    def test_paper_equivalents_scaled(self, rows):
        assert all(r.paper_equivalent == 64 * r.bit_entries for r in rows)

    def test_formatting(self, rows):
        assert "%BEP from BIT" in format_fig7(rows)


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig8(history_lengths=(10,), table_counts=(1, 8),
                        budget=BUDGET)

    def _get(self, rows, suite, selection, n_st):
        for r in rows:
            if (r.suite, r.selection, r.n_select_tables) == \
                    (suite, selection, n_st):
                return r
        raise AssertionError("row missing")

    def test_single_beats_double(self, rows):
        """Figure 8: double selection costs roughly 10%."""
        for suite in ("int", "fp"):
            for n_st in (1, 8):
                single = self._get(rows, suite, "single", n_st)
                double = self._get(rows, suite, "double", n_st)
                assert single.ipc_f > double.ipc_f

    def test_more_select_tables_help(self, rows):
        for suite in ("int", "fp"):
            for selection in ("single", "double"):
                one = self._get(rows, suite, selection, 1)
                eight = self._get(rows, suite, selection, 8)
                assert eight.ipc_f >= one.ipc_f

    def test_double_gains_more_from_tables(self, rows):
        """'Double selection significantly improves with more STs.'"""
        for suite in ("int", "fp"):
            s_gain = (self._get(rows, suite, "single", 8).ipc_f
                      / self._get(rows, suite, "single", 1).ipc_f)
            d_gain = (self._get(rows, suite, "double", 8).ipc_f
                      / self._get(rows, suite, "double", 1).ipc_f)
            assert d_gain > s_gain

    def test_formatting(self, rows):
        assert "hist/#ST" in format_fig8(rows)


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table5(btb_sizes=(8, 64), nls_sizes=(8, 64),
                          budget=BUDGET)

    def _get(self, rows, kind, size, near):
        for r in rows:
            if (r.target_kind, r.n_block_entries, r.near_block) == \
                    (kind, size, near):
                return r
        raise AssertionError("row missing")

    def test_bigger_arrays_fetch_better(self, rows):
        for kind in ("btb", "nls"):
            small = self._get(rows, kind, 8, False)
            large = self._get(rows, kind, 64, False)
            assert large.ipc_f >= small.ipc_f
            assert large.misfetch_immediate_share <= \
                small.misfetch_immediate_share

    def test_near_block_reduces_immediate_misfetch(self, rows):
        """~70% of conditionals are near-block; encoding them helps."""
        for kind in ("btb", "nls"):
            plain = self._get(rows, kind, 8, False)
            near = self._get(rows, kind, 8, True)
            assert near.misfetch_immediate_share < \
                plain.misfetch_immediate_share
            assert near.ipc_f >= plain.ipc_f

    def test_formatting(self, rows):
        assert "near-block?" in format_table5(rows)


class TestTable6:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table6(budget=BUDGET)

    def _get(self, rows, cache, suite):
        for r in rows:
            if (r.cache_type, r.suite) == (cache, suite):
                return r
        raise AssertionError("row missing")

    def test_self_aligned_wins(self, rows):
        for suite in ("int", "fp"):
            normal = self._get(rows, "normal", suite)
            align = self._get(rows, "align", suite)
            assert align.ipb > normal.ipb
            assert align.ipc_f_two_block > normal.ipc_f_two_block

    def test_two_blocks_beat_one(self, rows):
        """Dual block: ~40% (int) to ~70% (fp) faster in the paper."""
        for row in rows:
            assert row.ipc_f_two_block > row.ipc_f_one_block * 1.15

    def test_fp_outruns_int(self, rows):
        for cache in ("normal", "extend", "align"):
            assert self._get(rows, cache, "fp").ipc_f_two_block > \
                self._get(rows, cache, "int").ipc_f_two_block

    def test_formatting(self, rows):
        assert "IPC_f 2blk" in format_table6(rows)


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig9(budget=BUDGET)

    def test_all_18_programs(self, rows):
        assert len(rows) == 18

    def test_components_sum_to_bep(self, rows):
        for row in rows:
            assert sum(row.components.values()) == \
                pytest.approx(row.bep, rel=1e-6)

    def test_cond_mispredict_is_largest_overall(self, rows):
        """The paper: conditional mispredictions dominate BEP."""
        totals = {}
        for row in rows:
            for kind, value in row.components.items():
                totals[kind] = totals.get(kind, 0.0) + value
        assert totals[PenaltyKind.COND] == max(totals.values())

    def test_formatting(self, rows):
        text = format_fig9(rows)
        assert "misselect" in text


class TestTable7:
    def test_three_configurations(self):
        breakdowns = run_table7()
        assert [round(b.total_kbits) for b in breakdowns] == [52, 80, 72]

    def test_extrapolation_monotone(self):
        totals = [b.total_bits
                  for b in run_multi_block_extrapolation(max_blocks=4)]
        assert totals == sorted(totals)

    def test_formatting(self):
        assert "Kbits" in format_table7(run_table7())
