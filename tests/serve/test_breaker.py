"""Circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.serve.breaker import (
    ALLOW,
    CLOSED,
    HALF_OPEN,
    OPEN,
    PROBE,
    REJECT,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker("kmp", threshold=3, cooldown=5.0, clock=clock)


def test_starts_closed_and_allows(breaker):
    assert breaker.state == CLOSED
    assert breaker.admit() == ALLOW


def test_trips_after_consecutive_failures(breaker):
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.admit() == REJECT
    assert breaker.n_trips == 1


def test_success_resets_the_failure_streak(breaker):
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_half_opens_after_cooldown_with_single_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    assert breaker.admit() == REJECT
    clock.now += 5.0
    assert breaker.admit() == PROBE
    assert breaker.state == HALF_OPEN
    # Only one probe may be in flight.
    assert breaker.admit() == REJECT


def test_probe_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.now += 5.0
    assert breaker.admit() == PROBE
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.admit() == ALLOW


def test_probe_failure_reopens_and_restarts_cooldown(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.now += 5.0
    assert breaker.admit() == PROBE
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.n_trips == 2
    assert breaker.admit() == REJECT
    assert breaker.retry_after() == pytest.approx(5.0)
    clock.now += 5.0
    assert breaker.admit() == PROBE


def test_retry_after_counts_down(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    assert breaker.retry_after() == pytest.approx(5.0)
    clock.now += 2.0
    assert breaker.retry_after() == pytest.approx(3.0)


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker("x", threshold=0, cooldown=1.0)
    with pytest.raises(ValueError):
        CircuitBreaker("x", threshold=1, cooldown=0.0)
