"""Request model: round-trips, digests, canonical payloads."""

import json

import pytest

from repro.serve.requests import (
    RequestError,
    ServeRequest,
    ServeResponse,
    execute_request_cell,
    payload_digest,
    stats_payload,
)


class TestServeRequest:
    def test_round_trip(self):
        request = ServeRequest(workload="kmp", engine="multi",
                               n_blocks=3, config={"history_length": 6})
        rebuilt = ServeRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.digest() == request.digest()

    def test_digest_is_content_addressed(self):
        a = ServeRequest(workload="kmp", budget=2000)
        b = ServeRequest(workload="kmp", budget=2000)
        c = ServeRequest(workload="kmp", budget=2001)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            ServeRequest.from_dict({"workload": "kmp", "bogus": 1})

    def test_bad_engine_rejected(self):
        with pytest.raises(RequestError, match="engine"):
            ServeRequest(workload="kmp", engine="warp")

    def test_unknown_workload_rejected_by_validate(self):
        request = ServeRequest(workload="nosuch")
        with pytest.raises(RequestError, match="unknown workload"):
            request.validate()

    def test_invalid_config_rejected_by_validate(self):
        request = ServeRequest(workload="kmp",
                               config={"history_length": -3})
        with pytest.raises(RequestError):
            request.validate()

    def test_label_mentions_workload_and_engine(self):
        request = ServeRequest(workload="kmp", engine="two_ahead")
        assert "kmp" in request.label()
        assert "two_ahead" in request.label()


class TestPayloads:
    def test_payload_matches_direct_run(self):
        request = ServeRequest(workload="kmp", engine="dual", budget=2000)
        payload = stats_payload(request.run())
        assert payload["n_instructions"] > 0
        assert payload["n_branches"] > 0
        # Canonical encoding is JSON-stable and digestable.
        encoded = json.dumps(payload, sort_keys=True)
        assert json.loads(encoded) == payload
        assert len(payload_digest(payload)) == 64

    def test_payload_digest_is_deterministic(self):
        request = ServeRequest(workload="kmp", engine="single",
                               budget=2000)
        first = payload_digest(stats_payload(request.run()))
        second = payload_digest(stats_payload(request.run()))
        assert first == second


class TestExecuteRequestCell:
    def test_ok_cell(self):
        request = ServeRequest(workload="kmp", budget=2000)
        out = execute_request_cell((request.to_dict(), 0))
        assert out["ok"] is True
        assert out["payload"]["n_instructions"] > 0

    def test_failure_is_typed_not_raised(self):
        request = ServeRequest(workload="nosuch", budget=2000)
        out = execute_request_cell((request.to_dict(), 0))
        assert out["ok"] is False
        assert out["error_type"] == "KeyError"

    def test_fail_fault_becomes_typed_payload(self, monkeypatch):
        from repro.runtime import faults

        request = ServeRequest(workload="kmp", budget=2000)
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"fail:request={request.digest()[:8]}")
        out = execute_request_cell((request.to_dict(), 0))
        assert out == {"ok": False, "error_type": "FaultInjected",
                       "error": out["error"]}
        # The next service attempt runs clean.
        out = execute_request_cell((request.to_dict(), 1))
        assert out["ok"] is True


class TestServeResponse:
    def test_to_dict_round_trips_through_json(self):
        response = ServeResponse(request_digest="ab", workload="kmp",
                                 status="served", rung="fast",
                                 payload={"n_blocks": 1},
                                 payload_digest="ff")
        data = json.loads(json.dumps(response.to_dict()))
        assert data["status"] == "served"
        assert data["rung"] == "fast"
        assert response.ok
