"""Traffic models: determinism, skew shapes, and a live run."""

import asyncio

import numpy as np
import pytest

from repro.serve import PredictionService, ServeRequest
from repro.serve.traffic import (
    TrafficModel,
    build_universe,
    key_weights,
    request_stream,
    run_traffic,
)


class TestUniverse:
    def test_deterministic_and_distinct(self, qa_seed):
        first = build_universe(qa_seed, 12, budget=2000)
        second = build_universe(qa_seed, 12, budget=2000)
        digests = [r.digest() for r in first]
        assert digests == [r.digest() for r in second]
        assert len(set(digests)) == 12

    def test_all_members_valid(self, qa_seed):
        for request in build_universe(qa_seed, 8, budget=2000):
            request.validate()  # must not raise

    def test_different_seeds_differ(self):
        a = [r.digest() for r in build_universe(1, 10, budget=2000)]
        b = [r.digest() for r in build_universe(2, 10, budget=2000)]
        assert a != b


class TestStreams:
    def test_deterministic(self, qa_seed):
        model = TrafficModel(pattern="zipfian")
        a = request_stream(model, 20, 500, qa_seed)
        b = request_stream(model, 20, 500, qa_seed)
        assert np.array_equal(a, b)

    def test_zipfian_is_more_skewed_than_uniform(self, qa_seed):
        n = 20
        zipf = request_stream(TrafficModel(pattern="zipfian", zipf_s=1.4),
                              n, 2000, qa_seed)
        flat = request_stream(TrafficModel(pattern="uniform"),
                              n, 2000, qa_seed)
        top_zipf = np.bincount(zipf, minlength=n).max()
        top_flat = np.bincount(flat, minlength=n).max()
        assert top_zipf > 2 * top_flat

    def test_hotspot_mass_lands_on_hot_keys(self, qa_seed):
        model = TrafficModel(pattern="hotspot", hot_fraction=0.9,
                             hot_keys=2)
        stream = request_stream(model, 20, 2000, qa_seed)
        hot_share = np.isin(stream, [0, 1]).mean()
        assert hot_share > 0.8

    def test_sequential_round_robin(self, qa_seed):
        stream = request_stream(TrafficModel(pattern="sequential"),
                                4, 10, qa_seed)
        assert list(stream) == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_weights_normalized(self):
        for pattern in ("zipfian", "hotspot"):
            weights = key_weights(TrafficModel(pattern=pattern), 16)
            assert weights is not None
            assert weights.sum() == pytest.approx(1.0)
        assert key_weights(TrafficModel(pattern="uniform"), 16) is None

    def test_model_validation(self):
        with pytest.raises(ValueError, match="pattern"):
            TrafficModel(pattern="stampede")
        with pytest.raises(ValueError, match="arrival"):
            TrafficModel(arrival="never")
        with pytest.raises(ValueError):
            TrafficModel(hot_fraction=0.0)


class TestLiveTraffic:
    def test_sequential_run_accounts_for_every_request(self, qa_seed):
        universe = build_universe(qa_seed, 4, budget=2000)
        model = TrafficModel(pattern="sequential", arrival="steady")
        indexes = request_stream(model, len(universe), 24, qa_seed)

        async def body():
            async with PredictionService(queue_limit=16, batch_limit=8,
                                         jobs=2) as svc:
                return await run_traffic(svc, universe, indexes, model)

        summary, responses = asyncio.run(body())
        assert summary.n_requests == 24
        assert summary.served == 24
        assert summary.shed_overload == 0
        # 4 distinct requests, 24 arrivals: the rest must be cache hits.
        assert summary.served_cached == 20
        assert summary.hit_rate == pytest.approx(20 / 24)
        assert summary.latency_p95_s >= summary.latency_p50_s
        assert all(r is not None for r in responses)

    def test_bursty_arrivals_dedup_identical_keys(self, qa_seed):
        universe = build_universe(qa_seed, 2, budget=2000)
        model = TrafficModel(pattern="sequential", arrival="bursty",
                             burst=8)
        indexes = request_stream(model, len(universe), 16, qa_seed)

        async def body():
            async with PredictionService(queue_limit=16, batch_limit=8,
                                         jobs=2) as svc:
                return await run_traffic(svc, universe, indexes, model)

        summary, _ = asyncio.run(body())
        assert summary.served == 16
        assert summary.deduped + summary.served_cached >= 12
