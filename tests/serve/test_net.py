"""JSON-lines TCP frontend: typed answers for good and bad input."""

import asyncio
import json

from repro.serve import PredictionService, ServeRequest
from repro.serve.net import bound_port, start_server


def test_round_trip_and_typed_errors():
    request = ServeRequest(workload="kmp", engine="dual", budget=2000)

    async def body():
        async with PredictionService(queue_limit=16, batch_limit=8,
                                     jobs=2) as service:
            server = await start_server(service, "127.0.0.1", 0)
            port = bound_port(server)
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            lines = [
                json.dumps({"id": 1, **request.to_dict()}),
                "this is not json",
                json.dumps({"id": 2, "workload": "kmp",
                            "bogus_field": True}),
                json.dumps({"id": 3, **request.to_dict()}),
            ]
            writer.write(("\n".join(lines) + "\n").encode())
            await writer.drain()
            answers = []
            for _ in lines:
                answers.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return answers

    served, bad_json, bad_field, cached = asyncio.run(body())
    assert served["id"] == 1
    assert served["status"] == "served"
    assert served["rung"] == "fast"
    assert served["payload"]["n_instructions"] > 0

    assert bad_json["status"] == "failed"
    assert bad_json["error_type"] == "BadRequest"

    assert bad_field["id"] == 2
    assert bad_field["error_type"] == "BadRequest"

    assert cached["id"] == 3
    assert cached["status"] == "served"
    assert cached["rung"] == "cached"
    assert cached["payload_digest"] == served["payload_digest"]
