"""PredictionService: admission, dedup, and the degradation ladder.

The ladder tests are the satellite coverage promised by the issue:
deterministic fault specs force each rung — fast → scalar → cached-only
→ shed — and every test asserts the rung taken is recorded in the
response metadata.
"""

import asyncio
import time

import pytest

from repro.runtime import faults
from repro.serve import PredictionService, ServeRequest, ServiceOverload
from repro.serve.requests import (
    FAILED,
    RUNG_CACHED,
    RUNG_FAST,
    RUNG_SCALAR,
    RUNG_SHED,
    SERVED,
    SHED,
)
from repro.serve.service import _Pending


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


REQUEST = ServeRequest(workload="kmp", engine="dual", budget=2000)
OTHER = ServeRequest(workload="compress", engine="dual", budget=2000)


def _service(**kw):
    defaults = dict(queue_limit=16, batch_limit=8, jobs=2,
                    breaker_threshold=2, breaker_cooldown=0.2)
    defaults.update(kw)
    return PredictionService(**defaults)


def _run(coro):
    return asyncio.run(coro)


class TestHappyPath:
    def test_fast_rung_then_cached_rung(self):
        async def body():
            async with _service() as svc:
                first = await svc.submit(REQUEST)
                second = await svc.submit(REQUEST)
                return first, second

        first, second = _run(body())
        assert (first.status, first.rung) == (SERVED, RUNG_FAST)
        assert (second.status, second.rung) == (SERVED, RUNG_CACHED)
        assert second.cache_hit
        assert first.payload_digest == second.payload_digest
        assert first.payload == second.payload

    def test_single_flight_dedup(self):
        async def body():
            async with _service() as svc:
                outs = await asyncio.gather(
                    *[svc.submit(REQUEST) for _ in range(5)])
                return outs, svc.metrics.deduped

        outs, deduped = _run(body())
        assert deduped == 4
        assert sum(1 for o in outs if o.deduped) == 4
        assert len({o.payload_digest for o in outs}) == 1

    def test_invalid_request_is_a_typed_failure(self):
        async def body():
            async with _service() as svc:
                return await svc.submit(ServeRequest(workload="nosuch"))

        response = _run(body())
        assert response.status == FAILED
        assert response.error_type == "InvalidRequest"

    def test_submit_requires_running_service(self):
        svc = _service()
        with pytest.raises(RuntimeError, match="not running"):
            _run(svc.submit(REQUEST))


class TestDegradationLadder:
    def test_crash_recovers_on_fast_rung(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"crash:request={REQUEST.digest()[:8]}")
        async def body():
            async with _service() as svc:
                # Two distinct requests force a parallel batch, so the
                # crash really kills a worker process.
                a, b = await asyncio.gather(svc.submit(REQUEST),
                                            svc.submit(OTHER))
                return a, b, svc.metrics

        a, b, metrics = _run(body())
        assert (a.status, a.rung) == (SERVED, RUNG_FAST)
        assert a.attempts == 2              # crashed once, retried clean
        assert (b.status, b.rung) == (SERVED, RUNG_FAST)
        assert metrics.pool_respawns >= 1

    def test_fail_once_drops_to_scalar_rung(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"fail:request={REQUEST.digest()[:8]}")
        async def body():
            async with _service() as svc:
                return await svc.submit(REQUEST)

        response = _run(body())
        assert (response.status, response.rung) == (SERVED, RUNG_SCALAR)

    def test_scalar_rung_is_bit_exact(self, monkeypatch):
        clean = REQUEST.run()
        from repro.serve.requests import payload_digest, stats_payload

        expected = payload_digest(stats_payload(clean))
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"fail:request={REQUEST.digest()[:8]}")
        async def body():
            async with _service() as svc:
                return await svc.submit(REQUEST)

        assert _run(body()).payload_digest == expected

    def test_persistent_fault_is_a_typed_failure(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"fail:request={REQUEST.digest()[:8]},times=9")
        async def body():
            async with _service() as svc:
                return await svc.submit(REQUEST)

        response = _run(body())
        assert response.status == FAILED
        assert response.rung == RUNG_SCALAR
        assert response.error_type == "FaultInjected"

    def test_breaker_sheds_family_after_consecutive_failures(
            self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:request=kmp,times=99")
        variants = [ServeRequest(workload="kmp", engine=e, budget=2000)
                    for e in ("dual", "single", "two_ahead")]

        async def body():
            async with _service() as svc:
                outs = [await svc.submit(r) for r in variants]
                return outs, svc.breakers["kmp"]

        outs, guard = _run(body())
        assert [o.status for o in outs] == [FAILED, FAILED, SHED]
        shed = outs[2]
        assert shed.rung == RUNG_SHED
        assert shed.error_type == "BreakerOpen"
        assert shed.retry_after > 0
        assert guard.state == "open"
        assert guard.n_trips == 1

    def test_open_breaker_still_serves_cached(self, monkeypatch):
        # Serve and cache one kmp answer with no faults, then trip the
        # breaker with a persistent fault on a *different* kmp request:
        # the cached digest keeps serving (cached-only mode), the rest
        # of the family sheds.
        cached_req = REQUEST
        faulty = ServeRequest(workload="kmp", engine="single",
                              budget=2000)
        third = ServeRequest(workload="kmp", engine="two_ahead",
                             budget=2000)

        async def body():
            async with _service() as svc:
                warm = await svc.submit(cached_req)
                svc.breakers["kmp"].record_failure()
                svc.breakers["kmp"].record_failure()
                assert svc.breakers["kmp"].state == "open"
                hit = await svc.submit(cached_req)
                shed = await svc.submit(third)
                return warm, hit, shed

        warm, hit, shed = _run(body())
        assert warm.rung == RUNG_FAST
        assert (hit.status, hit.rung) == (SERVED, RUNG_CACHED)
        assert (shed.status, shed.rung) == (SHED, RUNG_SHED)

    def test_probe_closes_breaker_after_cooldown(self, monkeypatch):
        async def body():
            async with _service() as svc:
                svc.breakers["kmp"] = guard = svc._breaker("kmp")
                guard.record_failure()
                guard.record_failure()
                assert guard.state == "open"
                await asyncio.sleep(0.25)   # past the 0.2s cooldown
                probe = await svc.submit(REQUEST)
                return probe, guard

        probe, guard = _run(body())
        assert probe.status == SERVED
        assert guard.state == "closed"


class TestDeadlines:
    def test_expired_in_queue_is_typed(self):
        async def body():
            async with _service() as svc:
                loop = asyncio.get_running_loop()
                future = loop.create_future()
                now = time.monotonic()
                pending = _Pending(request=REQUEST,
                                   digest=REQUEST.digest(),
                                   future=future, submitted=now - 1.0,
                                   deadline_at=now - 0.5)
                await svc._process_batch([pending])
                return await future, svc.metrics.expired

        response, expired = _run(body())
        assert response.status == FAILED
        assert response.error_type == "DeadlineExceeded"
        assert expired == 1

    def test_hang_is_killed_at_deadline_and_retried(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"hang:request={REQUEST.digest()[:8]}")
        async def body():
            async with _service() as svc:
                a, b = await asyncio.gather(
                    svc.submit(REQUEST, deadline=3.0),
                    svc.submit(OTHER, deadline=3.0))
                return a, b, svc.metrics.cell_timeouts

        start = time.monotonic()
        a, b, timeouts = _run(body())
        elapsed = time.monotonic() - start
        assert (a.status, a.rung) == (SERVED, RUNG_FAST)
        assert (b.status, b.rung) == (SERVED, RUNG_FAST)
        assert timeouts == 1
        assert elapsed < 30.0  # killed at the ~3s deadline, not 600s


class TestAdmission:
    def test_overload_sheds_with_retry_after(self):
        requests = [ServeRequest(workload="kmp", engine="dual",
                                 budget=2000 + 100 * i)
                    for i in range(4)]

        async def body():
            svc = _service(queue_limit=2)
            svc._running = True  # admission only: no dispatcher running
            tasks = [asyncio.create_task(svc.submit(r))
                     for r in requests[:2]]
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceOverload) as info:
                await svc.submit(requests[2])
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            return info.value, svc.metrics.shed_overload

        error, shed = _run(body())
        assert error.retry_after > 0
        assert error.queue_depth == 2
        assert shed == 1

    def test_stop_sheds_queued_requests_typed(self):
        async def body():
            svc = _service()
            await svc.start()
            # Bypass the dispatcher: enqueue behind the stop sentinel
            # by stuffing the queue directly, then stop.
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            pending = _Pending(request=REQUEST,
                               digest=REQUEST.digest(), future=future,
                               submitted=time.monotonic(),
                               deadline_at=None)
            stopper = asyncio.create_task(svc.stop())
            await asyncio.sleep(0)
            svc._queue.put_nowait(pending)
            await stopper
            return await future, svc.metrics.shed_shutdown

        response, shed = _run(body())
        assert response.status == SHED
        assert response.error_type == "ServiceShutdown"
        assert shed == 1


class TestShardRouting:
    def test_unsharded_by_default(self):
        async def body():
            async with _service() as svc:
                response = await svc.submit(REQUEST)
                return response, svc.summary(), svc.metrics

        response, summary, metrics = _run(body())
        assert response.status == SERVED
        assert summary["shards"] == 1
        assert metrics.sharded_batches == 0

    def test_sharded_batch_matches_unsharded(self):
        requests = [
            ServeRequest(workload="kmp", engine="dual", budget=1500),
            ServeRequest(workload="compress", engine="dual",
                         budget=1500),
            ServeRequest(workload="kmp", engine="single", budget=1500),
            ServeRequest(workload="compress", engine="multi",
                         budget=1500),
        ]

        def run_with(shards):
            async def body():
                async with _service(shards=shards) as svc:
                    responses = await asyncio.gather(
                        *(svc.submit(r) for r in requests))
                    return responses, svc.metrics
            return _run(body())

        flat, flat_metrics = run_with(1)
        sharded, shard_metrics = run_with(2)
        assert flat_metrics.sharded_batches == 0
        assert shard_metrics.sharded_batches >= 1
        for a, b in zip(flat, sharded):
            assert a.status == b.status == SERVED
            assert a.payload_digest == b.payload_digest, \
                "sharded dispatch must not change any payload"

    def test_shards_env_snapshot_at_construction(self, monkeypatch):
        from repro.runtime import shard

        monkeypatch.setenv(shard.SHARDS_ENV, "3")
        svc = _service()
        assert svc.summary()["shards"] == 3
