"""Chaos campaigns: planning determinism and the bit-exact invariant."""

import json

import pytest

from repro.runtime import faults
from repro.serve.chaos import plan_chaos, run_chaos
from repro.serve.traffic import TrafficModel, build_universe, request_stream


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestPlanning:
    def test_plan_is_deterministic(self, qa_seed):
        universe = build_universe(qa_seed, 10, budget=2000)
        indexes = request_stream(TrafficModel(), len(universe), 200,
                                 qa_seed)
        assert plan_chaos(universe, indexes, qa_seed) \
            == plan_chaos(universe, indexes, qa_seed)

    def test_plan_spec_parses_and_targets_stream_members(self, qa_seed):
        universe = build_universe(qa_seed, 10, budget=2000)
        indexes = request_stream(TrafficModel(), len(universe), 200,
                                 qa_seed)
        plan = plan_chaos(universe, indexes, qa_seed)
        parsed = faults.parse_spec(plan.spec)
        assert parsed  # non-empty and grammatical
        appearing = {universe[int(i)].digest()[:12] for i in indexes}
        for group in (plan.crashes, plan.hangs, plan.soft_fails,
                      plan.hard_fails, plan.corrupt_entries):
            for target in group:
                assert target in appearing


class TestCampaign:
    def test_small_campaign_passes_and_writes_summary(self, qa_seed,
                                                      tmp_path):
        output = tmp_path / "BENCH_serve_chaos.json"
        result = run_chaos(seed=qa_seed, n_requests=120,
                           universe_size=8, budget=2000,
                           queue_limit=8, batch_limit=8, jobs=2,
                           deadline=5.0, output=output)
        assert result.passed, (result.mismatches,
                               result.untyped_failures)
        assert result.mismatches == []
        assert result.untyped_failures == []
        assert result.n_served_checked > 0
        # Faults actually fired: at least one typed failure or retry
        # appears in the service account.
        service = result.service
        degraded = (service["metrics"]["cell_retries"]
                    + service["metrics"]["pool_respawns"]
                    + service["metrics"]["degraded_batches"]
                    + service["metrics"]["served_scalar"]
                    + sum(service["metrics"]["failed"].values())
                    + service["store"]["corruptions"])
        assert degraded > 0

        data = json.loads(output.read_text())
        for key in ("plan", "traffic", "service", "passed",
                    "n_served_checked", "mismatches"):
            assert key in data
        assert data["passed"] is True
