"""Result store: verified reads, LRU bounds, injected corruption."""

import pytest

from repro.runtime import faults
from repro.serve.store import ResultStore


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _payload(n: int) -> dict:
    return {"n_blocks": n, "n_instructions": 10 * n}


def test_put_get_round_trip():
    store = ResultStore()
    store.put("ab", "kmp", _payload(1))
    assert store.get("ab", "kmp") == _payload(1)
    assert store.stats.hits == 1
    assert store.get("cd", "kmp") is None
    assert store.stats.misses == 1


def test_lru_eviction_beyond_bound():
    store = ResultStore(max_entries=2)
    store.put("a", "kmp", _payload(1))
    store.put("b", "kmp", _payload(2))
    store.get("a", "kmp")               # refresh a
    store.put("c", "kmp", _payload(3))  # evicts b
    assert store.get("b", "kmp") is None
    assert store.get("a", "kmp") is not None
    assert store.stats.evictions == 1


def test_corrupted_entry_is_a_clean_miss_never_wrong_bytes():
    spec = faults.parse_spec("corrupt:entry=ab")
    store = ResultStore(fault_spec=spec)
    store.put("abcd", "kmp", _payload(1))
    # The injected corruption flips the stored bytes; verification must
    # catch it and miss, never return a mangled payload.
    assert store.get("abcd", "kmp") is None
    assert store.stats.corruptions == 1
    # The entry was dropped: recompute and store again, reads are clean
    # (the fault already fired its one time).
    store.put("abcd", "kmp", _payload(1))
    assert store.get("abcd", "kmp") == _payload(1)


def test_corruption_respects_times_and_targets():
    spec = faults.parse_spec("corrupt:entry=ab,times=2")
    store = ResultStore(fault_spec=spec)
    for _ in range(2):
        store.put("abcd", "kmp", _payload(1))
        assert store.get("abcd", "kmp") is None
    store.put("abcd", "kmp", _payload(1))
    assert store.get("abcd", "kmp") == _payload(1)
    # Untargeted digests are never corrupted.
    store.put("ffff", "kmp", _payload(2))
    assert store.get("ffff", "kmp") == _payload(2)


def test_workload_name_targets_whole_family():
    spec = faults.parse_spec("corrupt:entry=kmp")
    store = ResultStore(fault_spec=spec)
    store.put("0000", "kmp", _payload(1))
    assert store.get("0000", "kmp") is None
    assert store.stats.corruptions == 1


def test_rejects_bad_bound():
    with pytest.raises(ValueError):
        ResultStore(max_entries=0)
