"""Bank-conflict model tests."""

from repro.icache import CacheGeometry, blocks_conflict, block_lines


GEO = CacheGeometry.normal(8)          # 8 banks
SA = CacheGeometry.self_aligned(8)     # 16 banks


class TestConflicts:
    def test_different_banks_no_conflict(self):
        assert not blocks_conflict(GEO, [0], [1])

    def test_same_bank_conflicts(self):
        assert blocks_conflict(GEO, [0], [8])  # both bank 0

    def test_same_line_is_shared_not_conflicting(self):
        # Both blocks in the same line: one read serves both.
        assert not blocks_conflict(GEO, [5], [5])

    def test_self_aligned_pairs(self):
        # Block one reads lines 0,1; block two reads lines 16,17 -> banks
        # (0,1) vs (0,1) with 16 banks: conflict.
        assert blocks_conflict(SA, [0, 1], [16, 17])
        # Lines 2,3 do not collide with 0,1.
        assert not blocks_conflict(SA, [0, 1], [2, 3])

    def test_second_block_internal_conflict(self):
        # A single block needing two lines on one bank also stalls.
        assert blocks_conflict(SA, [0, 1], [5, 21])  # 5 and 21 share bank 5

    def test_empty_second_block_never_conflicts(self):
        assert not blocks_conflict(GEO, [0], [])


class TestBlockLines:
    def test_normal_single_line(self):
        assert tuple(block_lines(GEO, 8, 8)) == (1,)

    def test_self_aligned_two_lines(self):
        assert tuple(block_lines(SA, 5, 8)) == (0, 1)
