"""Shared fixtures: hermetic cache dir and the session's QA seed.

The runtime's disk cache (``REPRO_CACHE_DIR``) defaults to
``~/.cache/repro``.  Tests must neither read a developer's warm cache
(hiding interpreter regressions) nor litter it, so the whole session is
pointed at a throwaway directory — while keeping the cache *enabled* so
its code paths stay exercised.

All seeded randomness in the suite flows from one session seed, taken
from ``REPRO_QA_SEED`` (default 5) and printed in the pytest header: a
failure seen in a CI log reproduces locally with the same variable set.
Tests take the ``qa_seed`` fixture (an int) and derive their own
``random.Random`` instances from it — never the global RNG.
"""

import os

import pytest

from repro import envvars

_DEFAULT_QA_SEED = 5


def _session_seed() -> int:
    raw = envvars.read("REPRO_QA_SEED")
    if raw is None or not raw.strip():
        return _DEFAULT_QA_SEED
    try:
        return int(raw.strip())
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_QA_SEED must be an integer, got {raw!r}")


def pytest_report_header(config):
    return f"repro: REPRO_QA_SEED={_session_seed()}"


@pytest.fixture(scope="session")
def qa_seed() -> int:
    """The session's base seed for all test randomness."""
    return _session_seed()


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache_dir(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
