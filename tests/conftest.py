"""Shared fixtures: keep the persistent cache out of the user's home.

The runtime's disk cache (``REPRO_CACHE_DIR``) defaults to
``~/.cache/repro``.  Tests must neither read a developer's warm cache
(hiding interpreter regressions) nor litter it, so the whole session is
pointed at a throwaway directory — while keeping the cache *enabled* so
its code paths stay exercised.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache_dir(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
