"""Edge cases across the ISA substrate: faults, boundaries, misuse."""

import pytest

from repro.cpu import Machine, MachineError
from repro.isa import Assembler, AssemblyError, ProgramBuilder
from repro.isa.assembler import Assembler as RawAssembler


class TestMachineFaults:
    def test_running_off_the_end_faults(self):
        asm = Assembler()
        asm.nop()  # no HALT: PC runs past the text segment
        with pytest.raises(MachineError, match="PC out of range"):
            Machine(asm.assemble()).run()

    def test_backward_indirect_out_of_range(self):
        asm = Assembler()
        asm.li("r3", -5)
        asm.jr("r3")
        asm.halt()
        with pytest.raises(MachineError):
            Machine(asm.assemble()).run()

    def test_mod_by_zero_faults(self):
        asm = Assembler()
        asm.li("r3", 10)
        asm.mod("r4", "r3", "r0")
        asm.halt()
        with pytest.raises(MachineError, match="division by zero"):
            Machine(asm.assemble()).run()

    def test_zero_budget_truncates_immediately(self):
        asm = Assembler()
        asm.halt()
        result = Machine(asm.assemble()).run(max_instructions=0)
        assert not result.halted
        assert result.trace.truncated
        assert result.trace.n_instructions == 1  # just the marker

    def test_shift_amounts_mask_to_six_bits(self):
        asm = Assembler()
        asm.li("r3", 1)
        asm.li("r4", 65)       # 65 & 63 == 1
        asm.sll("r5", "r3", "r4")
        asm.halt()
        machine = Machine(asm.assemble())
        machine.run()
        assert machine.regs[5] == 2

    def test_negative_immediate_li(self):
        asm = Assembler()
        asm.li("r3", -12345)
        asm.halt()
        machine = Machine(asm.assemble())
        machine.run()
        assert machine.regs[3] == -12345


class TestAssemblerMisuse:
    def test_place_without_reserve_rejected(self):
        asm = RawAssembler()
        with pytest.raises(AssemblyError):
            asm.place("never_reserved")

    def test_place_twice_rejected(self):
        asm = RawAssembler()
        label = asm.unique_label("x")
        asm.place(label)
        with pytest.raises(AssemblyError):
            asm.place(label)

    def test_branch_to_label_at_end_of_program(self):
        asm = Assembler()
        asm.j("end")
        asm.label("end")
        asm.halt()
        prog = asm.assemble()
        assert prog.instructions[0].imm == 1

    def test_entry_label_must_exist(self):
        asm = Assembler()
        asm.entry("ghost")
        asm.halt()
        with pytest.raises(AssemblyError):
            asm.assemble()


class TestBuilderEdges:
    def test_empty_function_body(self):
        b = ProgramBuilder()
        with b.function("noop", leaf=True):
            pass
        with b.function("main"):
            b.call("noop")
        machine = Machine(b.build())
        assert machine.run().halted

    def test_for_range_with_equal_bounds_skips_body(self):
        b = ProgramBuilder()
        with b.function("main"):
            b.asm.li("r4", 0)
            with b.for_range("r3", 5, 5):
                b.asm.li("r4", 99)
        machine = Machine(b.build())
        machine.run()
        assert machine.regs[4] == 0

    def test_build_twice_returns_same_program(self):
        b = ProgramBuilder()
        with b.function("main"):
            b.asm.nop()
        assert b.build() is b.build()

    def test_deeply_nested_control_flow(self):
        b = ProgramBuilder()
        with b.function("main"):
            b.asm.li("r7", 0)
            with b.for_range("r3", 0, 3):
                with b.if_("ge", "r3", "r0"):
                    with b.for_range("r4", 0, 3):
                        with b.if_else("eq", "r4", "r3") as br:
                            b.asm.addi("r7", "r7", 10)
                            br.otherwise()
                            b.asm.addi("r7", "r7", 1)
        machine = Machine(b.build())
        machine.run()
        assert machine.regs[7] == 3 * 10 + 6 * 1
