"""InstrKind classification, static code maps, instruction repr."""

import numpy as np
import pytest

from repro.isa import Assembler, InstrKind, Instruction, Op, classify_op
from repro.isa.kinds import INDIRECT_KINDS, TRANSFER_KINDS
from repro.isa.program import StaticCode


class TestClassifyOp:
    def test_conditionals(self):
        for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT):
            assert classify_op(op) is InstrKind.COND

    def test_direct_jump(self):
        assert classify_op(Op.J) is InstrKind.JUMP

    def test_calls(self):
        assert classify_op(Op.JAL) is InstrKind.CALL
        assert classify_op(Op.JALR) is InstrKind.CALL

    def test_return_vs_indirect(self):
        assert classify_op(Op.RET) is InstrKind.RETURN
        assert classify_op(Op.JR) is InstrKind.INDIRECT

    def test_halt(self):
        assert classify_op(Op.HALT) is InstrKind.HALT

    def test_alu_and_memory_are_nonbranch(self):
        for op in (Op.ADD, Op.MULI, Op.LD, Op.ST, Op.NOP, Op.LI):
            assert classify_op(op) is InstrKind.NONBRANCH

    def test_kind_sets(self):
        assert InstrKind.COND in TRANSFER_KINDS
        assert InstrKind.HALT not in TRANSFER_KINDS
        assert INDIRECT_KINDS == {InstrKind.RETURN, InstrKind.INDIRECT}


class TestStaticCode:
    def _program(self):
        asm = Assembler()
        asm.nop()                    # 0
        asm.beq("r1", "r2", 5)       # 1 direct target 5
        asm.j(0)                     # 2 direct target 0
        asm.jal(5)                   # 3 direct call
        asm.jr("r4")                 # 4 indirect
        asm.label("f")
        asm.ret()                    # 5
        asm.halt()                   # 6
        return asm.assemble()

    def test_kinds(self):
        static = self._program().static_code()
        expected = [InstrKind.NONBRANCH, InstrKind.COND, InstrKind.JUMP,
                    InstrKind.CALL, InstrKind.INDIRECT, InstrKind.RETURN,
                    InstrKind.HALT]
        assert [InstrKind(k) for k in static.kind] == expected

    def test_direct_targets(self):
        static = self._program().static_code()
        assert static.direct_target[1] == 5   # cond
        assert static.direct_target[2] == 0   # jump
        assert static.direct_target[3] == 5   # direct call
        assert static.direct_target[4] == -1  # indirect
        assert static.direct_target[5] == -1  # return

    def test_jalr_call_has_no_static_target(self):
        asm = Assembler()
        asm.jalr("r4")
        asm.halt()
        static = asm.assemble().static_code()
        assert InstrKind(static.kind[0]) is InstrKind.CALL
        assert static.direct_target[0] == -1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StaticCode(kind=np.zeros(3, dtype=np.uint8),
                       direct_target=np.zeros(2, dtype=np.int64))

    def test_len(self):
        assert len(self._program().static_code()) == 7


class TestInstructionRepr:
    @pytest.mark.parametrize("inst,fragment", [
        (Instruction(Op.BEQ, rs1=1, rs2=2, target="x"), "beq r1, r2"),
        (Instruction(Op.J, target=7), "j 7"),
        (Instruction(Op.JR, rs1=5), "jr r5"),
        (Instruction(Op.LD, rd=3, rs1=2, imm=4), "ld r3, 4(r2)"),
        (Instruction(Op.ST, rs2=3, rs1=2, imm=4), "st r3, 4(r2)"),
        (Instruction(Op.LI, rd=3, imm=9), "li r3, 9"),
        (Instruction(Op.RET), "ret"),
        (Instruction(Op.ADD, rd=1, rs1=2, rs2=3), "add r1"),
    ])
    def test_str_contains(self, inst, fragment):
        assert fragment in str(inst)

    def test_properties(self):
        beq = Instruction(Op.BEQ, rs1=1, rs2=2, target=0)
        assert beq.is_control and beq.is_cond_branch
        assert not beq.is_direct_jump and not beq.is_indirect
        jal = Instruction(Op.JAL, rd=1, target=0)
        assert jal.is_direct_jump and jal.is_control
        ret = Instruction(Op.RET, rs1=1)
        assert ret.is_indirect
        add = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert not add.is_control
