"""Unit tests for the assembler: labels, fixups, validation."""

import pytest

from repro.isa import Assembler, AssemblyError, Op
from repro.isa.opcodes import parse_register


class TestParseRegister:
    def test_numeric(self):
        assert parse_register(5) == 5

    def test_string(self):
        assert parse_register("r31") == 31

    def test_aliases(self):
        assert parse_register("zero") == 0
        assert parse_register("ra") == 1
        assert parse_register("sp") == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            parse_register(32)
        with pytest.raises(ValueError):
            parse_register("r99")

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_register("foo")
        with pytest.raises(ValueError):
            parse_register(None)
        with pytest.raises(ValueError):
            parse_register(True)


class TestLabels:
    def test_forward_reference_resolves(self):
        asm = Assembler()
        asm.j("end")
        asm.nop()
        asm.label("end")
        asm.halt()
        prog = asm.assemble()
        assert prog.instructions[0].imm == 2

    def test_backward_reference_resolves(self):
        asm = Assembler()
        asm.label("top")
        asm.nop()
        asm.beq("r1", "r2", "top")
        asm.halt()
        prog = asm.assemble()
        assert prog.instructions[1].imm == 0

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.j("nowhere")
        asm.halt()
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_unplaced_reserved_label_rejected(self):
        asm = Assembler()
        asm.unique_label("pending")
        asm.halt()
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_unique_labels_are_distinct(self):
        asm = Assembler()
        a = asm.unique_label("x")
        c = asm.unique_label("x")
        assert a != c
        asm.place(a)
        asm.place(c)
        asm.halt()
        asm.assemble()

    def test_numeric_target_out_of_range(self):
        asm = Assembler()
        asm.j(99)
        asm.halt()
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_entry_label(self):
        asm = Assembler()
        asm.halt()
        asm.label("start")
        asm.entry("start")
        asm.halt()
        prog = asm.assemble()
        assert prog.entry == 1


class TestEmission:
    def test_branch_requires_branch_opcode(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.branch(Op.ADD, "r1", "r2", "x")

    def test_here_tracks_addresses(self):
        asm = Assembler()
        assert asm.here == 0
        asm.nop()
        asm.nop()
        assert asm.here == 2

    def test_mv_is_addi_zero(self):
        asm = Assembler()
        asm.mv("r3", "r4")
        asm.halt()
        prog = asm.assemble()
        inst = prog.instructions[0]
        assert inst.op is Op.ADDI
        assert inst.rd == 3 and inst.rs1 == 4 and inst.imm == 0

    def test_jal_writes_link_register(self):
        asm = Assembler()
        asm.label("f")
        asm.jal("f")
        asm.halt()
        prog = asm.assemble()
        assert prog.instructions[0].rd == 1

    def test_program_length_and_labels_exported(self):
        asm = Assembler()
        asm.label("a")
        asm.nop()
        asm.halt()
        prog = asm.assemble(name="t")
        assert len(prog) == 2
        assert prog.labels["a"] == 0
        assert prog.name == "t"

    def test_disassemble_mentions_labels(self):
        asm = Assembler()
        asm.label("loop")
        asm.addi("r1", "r1", 1)
        asm.bne("r1", "r2", "loop")
        asm.halt()
        text = asm.assemble().disassemble()
        assert "loop:" in text
        assert "bne" in text
