"""Builder DSL tests: structured control flow lowers to correct execution."""

import pytest

from repro.cpu import Machine
from repro.isa import BuilderError, ProgramBuilder


def run_builder(build_body, **kwargs):
    b = ProgramBuilder(**kwargs)
    build_body(b)
    prog = b.build()
    machine = Machine(prog)
    result = machine.run(max_instructions=1_000_000)
    assert result.halted, "program did not halt"
    return machine, result


class TestFunctions:
    def test_main_required(self):
        b = ProgramBuilder()
        with pytest.raises(BuilderError):
            b.build()

    def test_nested_function_definitions_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(BuilderError):
            with b.function("main"):
                with b.function("inner"):
                    pass

    def test_call_chain_preserves_return_addresses(self):
        def body(b):
            with b.function("leaf", leaf=True):
                b.asm.li("r5", 3)
            with b.function("mid"):
                b.call("leaf")
                b.asm.addi("r5", "r5", 10)
            with b.function("main"):
                b.call("mid")
                b.asm.addi("r5", "r5", 100)
        machine, _ = run_builder(body)
        assert machine.regs[5] == 113

    def test_early_return_skips_rest(self):
        def body(b):
            with b.function("f"):
                b.asm.li("r5", 1)
                b.return_()
                b.asm.li("r5", 2)
            with b.function("main"):
                b.call("f")
        machine, _ = run_builder(body)
        assert machine.regs[5] == 1

    def test_return_outside_function_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(BuilderError):
            b.return_()

    def test_recursion_via_stack(self):
        # factorial(5) with an explicit argument register and stack saves
        def body(b):
            with b.function("fact"):
                # r3 = n, result in r4
                with b.if_else("le", "r3", "r0") as branch:
                    b.asm.li("r4", 1)
                    branch.otherwise()
                    b.push("r3")
                    b.asm.addi("r3", "r3", -1)
                    b.call("fact")
                    b.pop("r3")
                    b.asm.mul("r4", "r4", "r3")
            with b.function("main"):
                b.asm.li("r3", 5)
                b.call("fact")
        machine, _ = run_builder(body)
        assert machine.regs[4] == 120

    def test_indirect_call(self):
        def body(b):
            with b.function("target", leaf=True):
                b.asm.li("r6", 77)
            with b.function("main"):
                b.asm.li("r7", b.asm._labels["target"])
                b.call_indirect("r7")
        machine, _ = run_builder(body)
        assert machine.regs[6] == 77


class TestControlConstructs:
    def test_while_loop(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r3", 0)
                b.asm.li("r4", 7)
                with b.while_("lt", "r3", "r4"):
                    b.asm.addi("r3", "r3", 1)
        machine, _ = run_builder(body)
        assert machine.regs[3] == 7

    def test_while_false_initially_skips_body(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r3", 9)
                b.asm.li("r4", 5)
                b.asm.li("r5", 0)
                with b.while_("lt", "r3", "r4"):
                    b.asm.li("r5", 1)
        machine, _ = run_builder(body)
        assert machine.regs[5] == 0

    def test_do_while_executes_at_least_once(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r3", 100)
                b.asm.li("r4", 0)
                with b.do_while("lt", "r3", "r4"):
                    b.asm.addi("r5", "r5", 1)
        machine, _ = run_builder(body)
        assert machine.regs[5] == 1

    def test_if_taken_and_not_taken(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r3", 1)
                b.asm.li("r4", 2)
                with b.if_("lt", "r3", "r4"):
                    b.asm.li("r5", 10)
                with b.if_("gt", "r3", "r4"):
                    b.asm.li("r6", 20)
        machine, _ = run_builder(body)
        assert machine.regs[5] == 10
        assert machine.regs[6] == 0

    def test_if_else_both_arms(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r3", 5)
                with b.if_else("eq", "r3", "r0") as br:
                    b.asm.li("r4", 1)
                    br.otherwise()
                    b.asm.li("r4", 2)
        machine, _ = run_builder(body)
        assert machine.regs[4] == 2

    def test_if_else_otherwise_twice_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(BuilderError):
            with b.function("main"):
                with b.if_else("eq", "r3", "r0") as br:
                    br.otherwise()
                    br.otherwise()

    def test_for_range_counts(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r4", 0)
                with b.for_range("r3", 0, 10):
                    b.asm.add("r4", "r4", "r3")
        machine, _ = run_builder(body)
        assert machine.regs[4] == 45

    def test_for_range_nested(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r6", 0)
                with b.for_range("r3", 0, 5):
                    with b.for_range("r4", 0, 4):
                        b.asm.addi("r6", "r6", 1)
        machine, _ = run_builder(body)
        assert machine.regs[6] == 20

    def test_for_range_downward(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r4", 0)
                with b.for_range("r3", 5, 0, step=-1):
                    b.asm.addi("r4", "r4", 1)
        machine, _ = run_builder(body)
        assert machine.regs[4] == 5

    def test_for_range_zero_step_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(BuilderError):
            with b.function("main"):
                with b.for_range("r3", 0, 5, step=0):
                    pass

    def test_for_reg_uses_register_bound(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r8", 6)
                b.asm.li("r4", 0)
                with b.for_reg("r3", 0, "r8"):
                    b.asm.addi("r4", "r4", 1)
        machine, _ = run_builder(body)
        assert machine.regs[4] == 6

    def test_unknown_condition_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(BuilderError):
            with b.function("main"):
                with b.if_("spam", "r1", "r2"):
                    pass


class TestHelpers:
    def test_push_pop_lifo(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r3", 11)
                b.asm.li("r4", 22)
                b.push("r3")
                b.push("r4")
                b.pop("r5")
                b.pop("r6")
        machine, _ = run_builder(body)
        assert machine.regs[5] == 22
        assert machine.regs[6] == 11

    def test_lcg_step_matches_reference(self):
        def body(b):
            with b.function("main"):
                b.asm.li("r10", 42)
                b.lcg_step("r10")
        machine, _ = run_builder(body)
        assert machine.regs[10] == (42 * 1103515245 + 12345) % (1 << 31)

    def test_stack_must_fit(self):
        with pytest.raises(BuilderError):
            ProgramBuilder(data_size=16, stack_words=16)
