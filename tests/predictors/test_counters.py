"""2-bit saturating counter semantics, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors import (
    SaturatingCounter,
    counter_has_second_chance,
    counter_predicts_taken,
    counter_update,
)


class TestPrediction:
    def test_threshold(self):
        assert not counter_predicts_taken(0)
        assert not counter_predicts_taken(1)
        assert counter_predicts_taken(2)
        assert counter_predicts_taken(3)


class TestUpdate:
    def test_increment_saturates(self):
        assert counter_update(3, True) == 3
        assert counter_update(2, True) == 3

    def test_decrement_saturates(self):
        assert counter_update(0, False) == 0
        assert counter_update(1, False) == 0

    def test_single_flip_needs_two_misses_from_strong(self):
        state = 3  # strongly taken
        state = counter_update(state, False)
        assert counter_predicts_taken(state)  # second chance
        state = counter_update(state, False)
        assert not counter_predicts_taken(state)


class TestSecondChance:
    def test_strong_states_have_second_chance(self):
        assert counter_has_second_chance(3, True)
        assert counter_has_second_chance(0, False)

    def test_weak_states_do_not(self):
        assert not counter_has_second_chance(2, True)
        assert not counter_has_second_chance(1, False)


class TestClassWrapper:
    def test_initial_state_validated(self):
        with pytest.raises(ValueError):
            SaturatingCounter(4)
        with pytest.raises(ValueError):
            SaturatingCounter(-1)

    def test_update_chains(self):
        c = SaturatingCounter(2)
        assert c.taken
        c.update(False).update(False)
        assert not c.taken
        assert c.second_chance  # now at 0

    def test_repr(self):
        assert "2" in repr(SaturatingCounter(2))


@given(st.integers(0, 3), st.lists(st.booleans(), max_size=50))
def test_counter_stays_in_range(initial, outcomes):
    state = initial
    for taken in outcomes:
        state = counter_update(state, taken)
        assert 0 <= state <= 3


@given(st.integers(0, 3))
def test_two_consistent_outcomes_force_agreement(initial):
    # After two identical outcomes the prediction always matches them.
    for taken in (True, False):
        state = counter_update(counter_update(initial, taken), taken)
        assert counter_predicts_taken(state) == taken


@given(st.integers(0, 3), st.booleans())
def test_update_moves_toward_outcome(state, taken):
    new = counter_update(state, taken)
    if taken:
        assert new >= state
    else:
        assert new <= state
