"""BAC helper coverage: window scanning and cost dataclass."""

from repro.cpu import Machine
from repro.isa import Assembler
from repro.predictors import BACCost
from repro.predictors.bac import max_branches_per_block


def dense_branch_trace():
    """Four conditional branches packed inside one 8-wide window."""
    asm = Assembler()
    asm.li("r3", 0)
    asm.li("r4", 40)
    asm.label("top")
    asm.addi("r3", "r3", 1)
    for _ in range(4):
        asm.beq("r3", "r0", "top")  # never taken; stays in the window
    asm.blt("r3", "r4", "top")
    asm.halt()
    return Machine(asm.assemble()).run().trace


class TestMaxBranchesPerBlock:
    def test_counts_dense_window(self):
        trace = dense_branch_trace()
        # 4 never-taken beqs + the blt all fall within 8 addresses.
        assert max_branches_per_block(trace, block_width=8) == 5

    def test_narrow_window_sees_fewer(self):
        trace = dense_branch_trace()
        assert max_branches_per_block(trace, block_width=2) <= 2

    def test_branchless_trace(self):
        asm = Assembler()
        asm.nop()
        asm.halt()
        trace = Machine(asm.assemble()).run().trace
        assert max_branches_per_block(trace) == 0


class TestBACCostFields:
    def test_entry_bits_scale_with_address_width(self):
        narrow = BACCost.for_branches(2, address_bits=10)
        wide = BACCost.for_branches(2, address_bits=30)
        assert wide.bac_entry_bits == 3 * narrow.bac_entry_bits

    def test_matching_blocked_pht_needs_k_from_trace(self):
        """The comparison bench sizes the BAC from the densest window."""
        trace = dense_branch_trace()
        k = max_branches_per_block(trace, block_width=8)
        assert BACCost.for_branches(k).pht_lookups == (1 << k) - 1
