"""Global history register and block-outcome payload tests."""

import pytest
from hypothesis import given, strategies as st

from repro.predictors import BlockOutcomes, GlobalHistory, pack_block_outcomes


class TestGlobalHistory:
    def test_length_validated(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)

    def test_shift_in_orders_bits(self):
        ghr = GlobalHistory(4)
        ghr.shift_in(True)
        ghr.shift_in(False)
        ghr.shift_in(True)
        assert ghr.value == 0b101

    def test_shift_wraps_at_length(self):
        ghr = GlobalHistory(3)
        for _ in range(5):
            ghr.shift_in(True)
        assert ghr.value == 0b111
        ghr.shift_in(False)
        assert ghr.value == 0b110

    def test_block_shift_matches_sequential_shifts(self):
        a = GlobalHistory(8)
        b = GlobalHistory(8)
        outcomes = [True, False, False, True]
        a.shift_in_block(outcomes)
        for bit in outcomes:
            b.shift_in(bit)
        assert a.value == b.value

    def test_paper_example(self):
        # "not taken, not taken, taken" -> shift left 3, insert 001.
        ghr = GlobalHistory(10, value=0b1111111)
        ghr.shift_in_block([False, False, True])
        assert ghr.value & 0b111 == 0b001

    def test_index_is_xor(self):
        ghr = GlobalHistory(10, value=0b1010101010)
        assert ghr.index(0b0101010101) == 0b1111111111
        assert ghr.index(0) == ghr.value

    def test_snapshot_restore(self):
        ghr = GlobalHistory(6)
        ghr.shift_in_block([True, True, False])
        saved = ghr.snapshot()
        ghr.shift_in(True)
        ghr.restore(saved)
        assert ghr.value == saved


class TestBlockOutcomes:
    def test_pack_counts_leading_not_taken(self):
        assert pack_block_outcomes([False, False, True]) == \
            BlockOutcomes(2, True)

    def test_pack_fallthrough(self):
        assert pack_block_outcomes([False, False]) == BlockOutcomes(2, False)

    def test_pack_empty(self):
        assert pack_block_outcomes([]) == BlockOutcomes(0, False)

    def test_pack_stops_at_first_taken(self):
        # Outcomes after a taken branch belong to the next block.
        assert pack_block_outcomes([True, False]) == BlockOutcomes(0, True)

    def test_apply_reproduces_shift(self):
        ref = GlobalHistory(8)
        ref.shift_in_block([False, False, True])
        ghr = GlobalHistory(8)
        BlockOutcomes(2, True).apply(ghr)
        assert ghr.value == ref.value

    def test_equality_and_hash(self):
        assert BlockOutcomes(1, True) == BlockOutcomes(1, True)
        assert BlockOutcomes(1, True) != BlockOutcomes(1, False)
        assert BlockOutcomes(1, True) != BlockOutcomes(2, True)
        assert hash(BlockOutcomes(1, True)) == hash(BlockOutcomes(1, True))
        assert BlockOutcomes(0, False).__eq__(42) is NotImplemented


@given(st.lists(st.booleans(), max_size=16), st.integers(1, 16))
def test_ghr_value_always_within_mask(outcomes, length):
    ghr = GlobalHistory(length)
    for bit in outcomes:
        ghr.shift_in(bit)
        assert 0 <= ghr.value <= ghr.mask


@given(st.lists(st.booleans(), max_size=10))
def test_pack_apply_equals_truncated_shift(outcomes):
    """Applying the packed payload matches shifting the truncated pattern."""
    # The payload only represents outcomes up to the first taken branch —
    # exactly the outcomes that belong to the predicted block.
    cut = outcomes
    if True in outcomes:
        cut = outcomes[:outcomes.index(True) + 1]
    ref = GlobalHistory(12)
    ref.shift_in_block(cut)
    ghr = GlobalHistory(12)
    pack_block_outcomes(outcomes).apply(ghr)
    assert ghr.value == ref.value
