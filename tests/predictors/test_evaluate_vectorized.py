"""Vectorized direction kernels are bit-exact with the reference loops."""

import numpy as np
import pytest

from repro.icache import CacheGeometry
from repro.predictors import (
    BlockedPHT,
    ScalarPHT,
    direction_accuracy_sweep,
    evaluate_blocked_direction,
    evaluate_blocked_direction_vectorized,
    evaluate_scalar_direction,
    evaluate_scalar_direction_vectorized,
    packed_history,
    simulate_counter_stream,
)
from repro.predictors.evaluate import _grouping_order
from repro.workloads import load_fetch_input

BUDGET = 8_000
GEOMETRY = CacheGeometry.normal(8)
#: A mix of irregular (int) and loop-heavy (fp) control flow.
WORKLOADS = ("compress", "go", "swim", "fpppp")
HISTORIES = (4, 8, 12)


@pytest.fixture(scope="module", params=WORKLOADS)
def fetch_input(request):
    return load_fetch_input(request.param, GEOMETRY, BUDGET)


class TestPackedHistory:
    def test_matches_manual_shift_register(self):
        outcomes = np.array([1, 0, 1, 1, 0, 1], dtype=np.int64)
        h = 3
        values = packed_history(outcomes, h)
        ghr = 0
        assert values[0] == 0
        for t, bit in enumerate(outcomes):
            ghr = ((ghr << 1) | int(bit)) & ((1 << h) - 1)
            assert values[t + 1] == ghr

    def test_length_is_n_plus_one(self):
        assert len(packed_history(np.array([1, 0]), 5)) == 3


class TestGroupingOrder:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(7)
        # Big enough to take the radix path, with heavy duplication.
        slots = rng.integers(0, 5_000, size=40_000).astype(np.int64)
        np.testing.assert_array_equal(
            _grouping_order(slots), np.argsort(slots, kind="stable"))

    def test_small_input_falls_back(self):
        slots = np.array([3, 1, 2, 1], dtype=np.int64)
        np.testing.assert_array_equal(
            _grouping_order(slots), np.argsort(slots, kind="stable"))


class TestCounterStream:
    def _reference(self, slots, taken):
        from repro.predictors.counters import (COUNTER_INIT,
                                               counter_predicts_taken,
                                               counter_update)

        counters = {}
        wrong = 0
        for slot, outcome in zip(slots, taken):
            state = counters.get(slot, COUNTER_INIT)
            if counter_predicts_taken(state) != outcome:
                wrong += 1
            counters[slot] = counter_update(state, outcome)
        return wrong, counters

    def test_matches_sequential_updates(self):
        rng = np.random.default_rng(3)
        slots = rng.integers(0, 40, size=2_000)
        taken = rng.random(2_000) < 0.7
        wrong, finals = simulate_counter_stream(slots, taken)
        ref_wrong, ref_finals = self._reference(slots.tolist(),
                                                taken.tolist())
        assert wrong == ref_wrong
        assert finals == ref_finals

    def test_writes_back_into_counters(self):
        slots = np.array([0, 0, 2, 2, 2])
        taken = np.array([True, True, False, False, False])
        counters = [2, 2, 2]
        simulate_counter_stream(slots, taken, counters)
        assert counters == [3, 2, 0]

    def test_empty_stream(self):
        wrong, finals = simulate_counter_stream(np.array([], dtype=int),
                                                np.array([], dtype=bool))
        assert (wrong, finals) == (0, {})


class TestEvaluatorEquivalence:
    @pytest.mark.parametrize("h", HISTORIES)
    def test_scalar_bit_exact(self, fetch_input, h):
        ref_pht = ScalarPHT(history_length=h, n_tables=8)
        ref = evaluate_scalar_direction(fetch_input.trace, ref_pht)
        vec_pht = ScalarPHT(history_length=h, n_tables=8)
        vec = evaluate_scalar_direction_vectorized(fetch_input.trace,
                                                   vec_pht)
        assert vec == ref
        assert vec_pht._counters == ref_pht._counters

    @pytest.mark.parametrize("h", HISTORIES)
    def test_blocked_bit_exact(self, fetch_input, h):
        ref_pht = BlockedPHT(history_length=h, block_width=8)
        ref = evaluate_blocked_direction(fetch_input.blocks, ref_pht)
        vec_pht = BlockedPHT(history_length=h, block_width=8)
        vec = evaluate_blocked_direction_vectorized(fetch_input.blocks,
                                                    vec_pht)
        assert vec == ref
        assert vec_pht._counters == ref_pht._counters

    def test_batched_sweep_matches_reference(self, fetch_input):
        sweep = direction_accuracy_sweep(fetch_input.trace,
                                         fetch_input.blocks, HISTORIES)
        for h in HISTORIES:
            blocked, scalar = sweep[h]
            assert blocked == evaluate_blocked_direction(
                fetch_input.blocks,
                BlockedPHT(history_length=h, block_width=8))
            assert scalar == evaluate_scalar_direction(
                fetch_input.trace,
                ScalarPHT(history_length=h, n_tables=8))

    def test_sweep_handles_empty_history_list(self, fetch_input):
        assert direction_accuracy_sweep(fetch_input.trace,
                                        fetch_input.blocks, ()) == {}
