"""Direction evaluators: loops learn, blocked ~ scalar accuracy (Fig 6)."""

from repro.cpu import Machine
from repro.icache.geometry import CacheGeometry
from repro.isa import Assembler, ProgramBuilder
from repro.predictors import (
    BACCost,
    BlockedPHT,
    ScalarPHT,
    blocked_pht_lookups,
    evaluate_bac_direction,
    evaluate_blocked_direction,
    evaluate_scalar_direction,
)
from repro.trace import SyntheticSpec, segment_blocks, synthetic_program


def loop_trace(iterations=200):
    asm = Assembler()
    asm.li("r3", 0)
    asm.li("r4", iterations)
    asm.label("top")
    asm.addi("r3", "r3", 1)
    asm.blt("r3", "r4", "top")
    asm.halt()
    return Machine(asm.assemble()).run().trace


def alternating_trace(iterations=400):
    """Branch taken on even iterations only — needs history to predict."""
    asm = Assembler()
    asm.li("r3", 0)
    asm.li("r4", iterations)
    asm.label("top")
    asm.andi("r5", "r3", 1)
    asm.beq("r5", "r0", "skip")
    asm.nop()
    asm.label("skip")
    asm.addi("r3", "r3", 1)
    asm.blt("r3", "r4", "top")
    asm.halt()
    return Machine(asm.assemble()).run().trace


class TestScalarEvaluator:
    def test_simple_loop_is_nearly_perfect(self):
        result = evaluate_scalar_direction(loop_trace(), ScalarPHT())
        assert result.n_cond == 200
        assert result.mispredicts <= 3  # warmup plus final fall-through

    def test_alternating_pattern_learned_via_history(self):
        result = evaluate_scalar_direction(alternating_trace(), ScalarPHT())
        assert result.misprediction_rate < 0.05

    def test_rate_bounds(self):
        result = evaluate_scalar_direction(loop_trace(50), ScalarPHT())
        assert 0.0 <= result.misprediction_rate <= 1.0
        assert result.accuracy == 1.0 - result.misprediction_rate


class TestBlockedEvaluator:
    def _blocked(self, trace, history=10):
        blocks = segment_blocks(trace, CacheGeometry.normal(8))
        return evaluate_blocked_direction(
            blocks, BlockedPHT(history_length=history))

    def test_simple_loop_is_nearly_perfect(self):
        result = self._blocked(loop_trace())
        assert result.n_cond == 200
        assert result.mispredicts <= 3

    def test_alternating_pattern_learned(self):
        result = self._blocked(alternating_trace())
        assert result.misprediction_rate < 0.05

    def test_counts_every_executed_cond(self):
        trace = loop_trace(77)
        result = self._blocked(trace)
        assert result.n_cond == trace.n_cond


class TestBlockedVsScalar:
    def test_accuracy_within_tolerance_on_synthetic_mix(self):
        """The paper's headline: blocked ~ scalar accuracy at equal size."""
        total_scalar = total_blocked = 0
        conds = 0
        for seed in range(4):
            trace = Machine(synthetic_program(
                SyntheticSpec(seed=seed, irregularity=0.7, iterations=20)
            )).run(max_instructions=60_000).trace
            s = evaluate_scalar_direction(
                trace, ScalarPHT(history_length=10, n_tables=8))
            blocks = segment_blocks(trace, CacheGeometry.normal(8))
            p = evaluate_blocked_direction(
                blocks, BlockedPHT(history_length=10, block_width=8))
            assert s.n_cond == p.n_cond
            total_scalar += s.mispredicts
            total_blocked += p.mispredicts
            conds += s.n_cond
        rate_scalar = total_scalar / conds
        rate_blocked = total_blocked / conds
        # "The difference in accuracy ... were small" — allow 2 points.
        assert abs(rate_scalar - rate_blocked) < 0.02


class TestBACBaseline:
    def test_cost_grows_exponentially(self):
        costs = [BACCost.for_branches(k).pht_lookups for k in (1, 2, 3, 4)]
        assert costs == [1, 3, 7, 15]
        assert BACCost.for_branches(3).bac_addresses_per_entry == 14

    def test_blocked_lookups_constant(self):
        assert [blocked_pht_lookups(k) for k in (1, 2, 3, 8)] == [1, 1, 1, 1]

    def test_bac_accuracy_equals_scalar(self):
        trace = alternating_trace()
        bac = evaluate_bac_direction(trace, history_length=10, n_tables=8)
        scalar = evaluate_scalar_direction(
            trace, ScalarPHT(history_length=10, n_tables=8))
        assert bac.mispredicts == scalar.mispredicts

    def test_cost_validation(self):
        import pytest
        with pytest.raises(ValueError):
            BACCost.for_branches(0)
        with pytest.raises(ValueError):
            blocked_pht_lookups(0)
