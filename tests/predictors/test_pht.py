"""Scalar and blocked PHT structure tests."""

import pytest

from repro.predictors import (
    BlockedPHT,
    INDEX_GHR,
    ScalarPHT,
)


class TestBlockedPHT:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockedPHT(history_length=0)
        with pytest.raises(ValueError):
            BlockedPHT(block_width=0)
        with pytest.raises(ValueError):
            BlockedPHT(n_tables=0)

    def test_entry_holds_block_width_counters(self):
        pht = BlockedPHT(history_length=4, block_width=8)
        base = pht.index(0b1010, 3)
        assert len(pht.entry(base)) == 8

    def test_initial_prediction_weakly_taken(self):
        pht = BlockedPHT(history_length=4)
        base = pht.index(0, 0)
        assert pht.predicts_taken(base, 0)
        assert pht.counter(base, 0) == 2

    def test_counters_independent_per_position(self):
        pht = BlockedPHT(history_length=4)
        base = pht.index(0b0110, 5)
        pht.update(base, 2, False)
        pht.update(base, 2, False)
        assert not pht.predicts_taken(base, 2)
        assert pht.predicts_taken(base, 3)

    def test_index_xors_history_and_address(self):
        pht = BlockedPHT(history_length=4, block_width=8)
        assert pht.index(0b1111, 0b0000) == pht.index(0b0000, 0b1111)
        assert pht.index(0b1111, 0b1111) == pht.index(0, 0)

    def test_multiple_tables_separate_by_address(self):
        pht = BlockedPHT(history_length=4, block_width=4, n_tables=2)
        even = pht.index(0, 2)
        odd = pht.index(0, 3)
        pht.update(even, 0, False)
        pht.update(even, 0, False)
        assert not pht.predicts_taken(even, 0)
        assert pht.predicts_taken(odd, 0)

    def test_position_wraps_modulo_block_width(self):
        pht = BlockedPHT(block_width=8)
        assert pht.position(13) == 5
        assert pht.position(8) == 0

    def test_storage_bits_matches_table7(self):
        # Paper default: 2 * 8 * 1024 * 1 = 16 Kbits.
        pht = BlockedPHT(history_length=10, block_width=8, n_tables=1)
        assert pht.storage_bits == 16 * 1024


class TestScalarPHT:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScalarPHT(history_length=0)
        with pytest.raises(ValueError):
            ScalarPHT(n_tables=0)
        with pytest.raises(ValueError):
            ScalarPHT(index_mode="nope")

    def test_learns_direction(self):
        pht = ScalarPHT(history_length=4, n_tables=2)
        for _ in range(3):
            pht.update(0b1010, 12, False)
        assert not pht.predicts_taken(0b1010, 12)

    def test_tables_selected_by_low_bits(self):
        pht = ScalarPHT(history_length=4, n_tables=2, index_mode=INDEX_GHR)
        pht.update(0, 2, False)
        pht.update(0, 2, False)
        assert not pht.predicts_taken(0, 2)   # same table, same index
        assert pht.predicts_taken(0, 3)       # other table untouched

    def test_equal_size_to_blocked(self):
        scalar = ScalarPHT(history_length=10, n_tables=8)
        blocked = BlockedPHT(history_length=10, block_width=8)
        assert scalar.storage_bits == blocked.storage_bits

    def test_ghr_mode_ignores_high_pc_bits(self):
        pht = ScalarPHT(history_length=4, n_tables=1, index_mode=INDEX_GHR)
        pht.update(0b0011, 100, False)
        pht.update(0b0011, 900, False)
        # Same history, different pc: same counter in GHR mode.
        assert not pht.predicts_taken(0b0011, 500)
