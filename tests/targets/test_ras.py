"""Return-address-stack tests, including dual-block bypass rules."""

import pytest
from hypothesis import given, strategies as st

from repro.targets import ReturnAddressStack


class TestBasicStack:
    def test_size_validated(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10

    def test_empty_pop_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None

    def test_peek_does_not_consume(self):
        ras = ReturnAddressStack(4)
        ras.push(5)
        assert ras.peek() == 5
        assert ras.peek() == 5
        assert ras.depth == 1

    def test_peek_depth(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.peek(0) == 2
        assert ras.peek(1) == 1
        assert ras.peek(2) is None

    def test_overflow_wraps_and_loses_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        # Entry 1 was overwritten; wraparound re-reads slot contents.
        assert ras.depth == 0
        assert ras.pop() is None


class TestDualBlockBypass:
    def test_first_block_calls_bypasses_return_address(self):
        ras = ReturnAddressStack(4)
        ras.push(100)
        assert ras.predict_for_second_block(
            first_block_calls=True, first_block_returns=False,
            first_block_return_address=55) == 55

    def test_first_block_returns_uses_second_entry(self):
        ras = ReturnAddressStack(4)
        ras.push(100)
        ras.push(200)
        assert ras.predict_for_second_block(
            first_block_calls=False, first_block_returns=True,
            first_block_return_address=0) == 100

    def test_plain_case_uses_top(self):
        ras = ReturnAddressStack(4)
        ras.push(100)
        assert ras.predict_for_second_block(
            first_block_calls=False, first_block_returns=False,
            first_block_return_address=0) == 100


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=20))
def test_within_capacity_stack_is_exact(addresses):
    """Pushes within capacity always pop back in LIFO order."""
    ras = ReturnAddressStack(32)
    for a in addresses:
        ras.push(a)
    for a in reversed(addresses):
        assert ras.pop() == a


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
def test_depth_never_exceeds_size(ops):
    ras = ReturnAddressStack(4)
    for i, op in enumerate(ops):
        if op == "push":
            ras.push(i)
        else:
            ras.pop()
        assert 0 <= ras.depth <= 4
