"""NLS and BTB target-array behaviour: aliasing, tags, LRU, duality."""

import pytest

from repro.targets import (
    BlockBTB,
    DualBTBTargetArray,
    DualNLSTargetArray,
    NLSTargetArray,
)


class TestNLS:
    def test_validation(self):
        with pytest.raises(ValueError):
            NLSTargetArray(0)
        with pytest.raises(ValueError):
            NLSTargetArray(4, line_size=0)

    def test_cold_lookup_is_none(self):
        nls = NLSTargetArray(16, 8)
        assert nls.lookup(3, 5) is None

    def test_update_then_lookup(self):
        nls = NLSTargetArray(16, 8)
        nls.update(3, 5, 1234)
        assert nls.lookup(3, 5) == 1234

    def test_positions_independent(self):
        nls = NLSTargetArray(16, 8)
        nls.update(3, 5, 111)
        nls.update(3, 6, 222)
        assert nls.lookup(3, 5) == 111
        assert nls.lookup(3, 6) == 222

    def test_tagless_aliasing_returns_stale_target(self):
        nls = NLSTargetArray(16, 8)
        nls.update(3, 5, 111)
        # Line 19 maps onto the same entry (19 % 16 == 3): no tag check.
        assert nls.lookup(19, 5) == 111
        nls.update(19, 5, 999)
        assert nls.lookup(3, 5) == 999  # clobbered — the NLS cost model

    def test_storage_matches_table7_default(self):
        # 256 entries * 8 positions * 10-bit line index = 20 Kbits.
        assert NLSTargetArray(256, 8).storage_bits == 20 * 1024


class TestDualNLS:
    def test_halves_are_independent(self):
        dual = DualNLSTargetArray(16, 8)
        dual.update(1, 4, 2, 100)
        dual.update(2, 4, 2, 200)
        assert dual.lookup(1, 4, 2) == 100
        assert dual.lookup(2, 4, 2) == 200

    def test_which_validated(self):
        dual = DualNLSTargetArray(16, 8)
        with pytest.raises(ValueError):
            dual.lookup(3, 0, 0)
        with pytest.raises(ValueError):
            dual.update(0, 0, 0, 1)

    def test_storage_doubles(self):
        assert DualNLSTargetArray(256, 8).storage_bits == 40 * 1024


class TestBTB:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockBTB(0)
        with pytest.raises(ValueError):
            BlockBTB(10, associativity=4)  # not a multiple
        with pytest.raises(ValueError):
            BlockBTB(8, associativity=0)

    def test_miss_returns_none(self):
        btb = BlockBTB(8, 8, associativity=4)
        assert btb.lookup(5, 3) is None

    def test_hit_after_update(self):
        btb = BlockBTB(8, 8, associativity=4)
        btb.update(5, 3, 777)
        assert btb.lookup(5, 3) == 777

    def test_tag_check_prevents_aliasing(self):
        btb = BlockBTB(8, 8, associativity=4)  # 2 sets
        btb.update(0, 3, 111)
        # Line 2 maps to the same set but has a different tag: miss, not
        # a stale hit (the BTB's advantage over the tag-less NLS).
        assert btb.lookup(2, 3) is None

    def test_lru_evicts_least_recent(self):
        btb = BlockBTB(4, 8, associativity=2)  # 2 sets, 2 ways
        btb.update(0, 0, 100)   # set 0
        btb.update(2, 0, 200)   # set 0 (2 % 2 == 0)
        btb.lookup(0, 0)        # touch line 0 -> line 2 becomes LRU
        btb.update(4, 0, 300)   # set 0, evicts line 2
        assert btb.lookup(0, 0) == 100
        assert btb.lookup(2, 0) is None
        assert btb.lookup(4, 0) == 300

    def test_same_line_different_positions_share_entry(self):
        btb = BlockBTB(4, 8, associativity=2)
        btb.update(1, 2, 10)
        btb.update(1, 7, 20)
        assert btb.lookup(1, 2) == 10
        assert btb.lookup(1, 7) == 20


class TestDualBTB:
    def test_target_number_in_tag(self):
        dual = DualBTBTargetArray(8, 8, associativity=4)
        dual.update(1, 6, 2, 123)
        dual.update(2, 6, 2, 456)
        assert dual.lookup(1, 6, 2) == 123
        assert dual.lookup(2, 6, 2) == 456

    def test_which_validated(self):
        dual = DualBTBTargetArray(8, 8)
        with pytest.raises(ValueError):
            dual.lookup(3, 0, 0)
        with pytest.raises(ValueError):
            dual.update(0, 0, 0, 9)

    def test_shared_capacity_across_targets(self):
        # 4 entries, 1 set of 4 ways: entries for which=1 and which=2
        # compete for the same ways (the paper's shared-BTB design).
        dual = DualBTBTargetArray(4, 8, associativity=4)
        for line in range(4):
            dual.update(1, line * 1 + 0, 0, line)
        dual.update(2, 99, 0, 999)  # fifth entry evicts an LRU way
        hits = sum(dual.lookup(1, line, 0) is not None for line in range(4))
        assert hits == 3
        assert dual.lookup(2, 99, 0) == 999
