"""BIT encoding (Table 1) and separate BIT-table aliasing behaviour."""

import pytest

from repro.isa import Assembler, InstrKind
from repro.targets import (
    BITTable,
    BitCode,
    NEAR_BLOCK_LINE_OFFSET,
    encode_instruction,
    encode_window,
    near_block_target,
)

K = InstrKind


class TestEncodeInstruction:
    def test_nonbranch(self):
        assert encode_instruction(int(K.NONBRANCH), 0, -1, 8, False) == \
            BitCode.NONBRANCH

    def test_return(self):
        assert encode_instruction(int(K.RETURN), 0, -1, 8, False) == \
            BitCode.RETURN

    def test_other_branches(self):
        for kind in (K.JUMP, K.CALL, K.INDIRECT):
            assert encode_instruction(int(kind), 0, -1, 8, False) == \
                BitCode.OTHER

    def test_cond_without_near_block(self):
        # Even a same-line target encodes as COND_LONG in 2-bit mode.
        assert encode_instruction(int(K.COND), 10, 12, 8, False) == \
            BitCode.COND_LONG

    def test_cond_near_block_offsets(self):
        line = 8
        pc = 20  # line 2
        cases = {
            BitCode.COND_PREV_LINE: 15,   # line 1
            BitCode.COND_SAME_LINE: 17,   # line 2
            BitCode.COND_NEXT_LINE: 25,   # line 3
            BitCode.COND_NEXT2_LINE: 33,  # line 4
        }
        for code, target in cases.items():
            assert encode_instruction(int(K.COND), pc, target, line,
                                      True) == code

    def test_cond_far_target_is_long(self):
        assert encode_instruction(int(K.COND), 20, 100, 8, True) == \
            BitCode.COND_LONG
        assert encode_instruction(int(K.COND), 20, 0, 8, True) == \
            BitCode.COND_LONG


class TestNearBlockTarget:
    def test_adder_reproduces_line(self):
        for code, offset in NEAR_BLOCK_LINE_OFFSET.items():
            pc = 20
            assert near_block_target(code, pc, 8) == (20 // 8 + offset) * 8


class TestEncodeWindow:
    def _static(self):
        asm = Assembler()
        asm.nop()                      # 0
        asm.beq("r1", "r2", 0)         # 1 -> target line 0 (prev)
        asm.j(5)                       # 2
        asm.ret()                      # 3
        asm.nop()                      # 4
        asm.halt()                     # 5
        return asm.assemble().static_code()

    def test_window_codes(self):
        codes = encode_window(self._static(), 0, 6, 8, False)
        assert codes == (BitCode.NONBRANCH, BitCode.COND_LONG, BitCode.OTHER,
                         BitCode.RETURN, BitCode.NONBRANCH,
                         BitCode.NONBRANCH)

    def test_near_block_window(self):
        codes = encode_window(self._static(), 0, 3, 8, True)
        assert codes[1] == BitCode.COND_SAME_LINE

    def test_out_of_range_encodes_nonbranch(self):
        codes = encode_window(self._static(), 4, 8, 8, False)
        assert all(c == BitCode.NONBRANCH for c in codes[2:])


class TestBITTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            BITTable(0)

    def test_cold_access(self):
        table = BITTable(16)
        codes, exact = table.access(3)
        assert codes is None
        assert not exact

    def test_fill_then_exact(self):
        table = BITTable(16)
        table.fill(3, (BitCode.COND_LONG,) * 8)
        codes, exact = table.access(3)
        assert exact
        assert codes == (BitCode.COND_LONG,) * 8

    def test_aliased_access_returns_stale_codes(self):
        table = BITTable(16)
        table.fill(3, (BitCode.RETURN,) * 8)
        codes, exact = table.access(19)  # 19 % 16 == 3
        assert not exact
        assert codes == (BitCode.RETURN,) * 8
        assert table.stale_hits == 1

    def test_refill_replaces(self):
        table = BITTable(16)
        table.fill(3, (BitCode.RETURN,) * 8)
        table.fill(19, (BitCode.OTHER,) * 8)
        codes, exact = table.access(19)
        assert exact and codes == (BitCode.OTHER,) * 8
        codes, exact = table.access(3)
        assert not exact

    def test_storage_matches_table7(self):
        # 1024 entries * 8 instructions * 2 bits = 16 Kbits.
        assert BITTable(1024, 8).storage_bits == 16 * 1024

    def test_access_counters(self):
        table = BITTable(4)
        table.access(0)
        table.access(1)
        assert table.accesses == 2
