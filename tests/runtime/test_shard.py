"""The shard scheduler: partitioning, stealing, driver, shard resume.

The pure scheduler core is unit-tested with a fake clock (no sleeps);
the real process driver is exercised through ``run_resilient`` with
``shards > 1`` against the serial baseline — sharded execution must be
bit-exact, including through fault retries and a kill/resume cycle that
changes the shard count between runs.
"""

import pytest

from repro.runtime import cache, faults, resilience, shard
from repro.runtime.executor import JOBS_ENV
from repro.runtime.resilience import (
    FAILED,
    CellOutcome,
    SweepError,
    drain_reports,
    run_resilient,
)
from repro.runtime.shard import (
    GAVE_UP,
    POLICIES,
    RETRY,
    Assignment,
    ShardScheduler,
    ShardStateError,
    home_shards,
    partition,
    shard_count,
    shard_policy,
)

CELLS = list(range(12))
EXPECTED = [x * x for x in CELLS]


def _square(x):
    """Top-level worker so it pickles into pool processes."""
    return x * x


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    """Hermetic knobs: no env leakage, no backoff sleeps, fresh reports."""
    for env in (JOBS_ENV, resilience.TIMEOUT_ENV, resilience.RETRIES_ENV,
                resilience.RESUME_ENV, faults.FAULTS_ENV,
                shard.SHARDS_ENV, shard.POLICY_ENV):
        monkeypatch.delenv(env, raising=False)
    monkeypatch.setattr(resilience, "BACKOFF_BASE", 0.0)
    faults.reset()
    drain_reports()
    yield
    drain_reports()


class TestKnobs:
    def test_unset_means_unsharded(self):
        assert shard_count() == 1

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv(shard.SHARDS_ENV, "4")
        assert shard_count() == 4

    @pytest.mark.parametrize("value", ["auto", "0"])
    def test_auto_means_cpu_count(self, monkeypatch, value):
        monkeypatch.setenv(shard.SHARDS_ENV, value)
        assert shard_count() >= 1

    @pytest.mark.parametrize("value", ["several", "-2", "1.5"])
    def test_garbage_rejected(self, monkeypatch, value):
        monkeypatch.setenv(shard.SHARDS_ENV, value)
        with pytest.raises(ValueError, match=shard.SHARDS_ENV):
            shard_count()

    def test_policy_default(self):
        assert shard_policy() == shard.DEFAULT_POLICY

    @pytest.mark.parametrize("value", POLICIES)
    def test_policy_values(self, monkeypatch, value):
        monkeypatch.setenv(shard.POLICY_ENV, value)
        assert shard_policy() == value

    def test_policy_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(shard.POLICY_ENV, "round-robin")
        with pytest.raises(ValueError, match=shard.POLICY_ENV):
            shard_policy()


class TestPartition:
    def test_every_cell_assigned_once(self):
        for policy in POLICIES:
            plan = partition(CELLS, 3, policy)
            assert plan.n_cells == len(CELLS)
            assert sum(plan.counts()) == len(CELLS)
            assert all(0 <= s < 3 for s in plan.assignment)

    def test_shards_clamped_to_cell_count(self):
        plan = partition([1, 2], 8, "range")
        assert plan.n_shards == 2

    def test_range_is_contiguous_and_balanced(self):
        plan = partition(CELLS, 5, "range")
        assert list(plan.assignment) == sorted(plan.assignment)
        counts = plan.counts()
        assert max(counts) - min(counts) <= 1

    def test_hash_is_stable_under_reorder(self):
        cells = ["a", "b", "c", "d", "e"]
        fwd = partition(cells, 3, "hash")
        rev = partition(list(reversed(cells)), 3, "hash")
        for i, cell in enumerate(cells):
            j = len(cells) - 1 - i
            assert fwd.assignment[i] == rev.assignment[j], cell

    def test_size_balances_skewed_costs(self):
        costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0]
        plan = partition(list(range(10)), 2, "size", costs=costs)
        loads = [0.0, 0.0]
        for i, s in enumerate(plan.assignment):
            loads[s] += costs[i]
        assert abs(loads[0] - loads[1]) <= 1.0

    def test_size_cost_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="costs length"):
            partition([1, 2, 3], 2, "size", costs=[1.0])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard policy"):
            partition(CELLS, 2, "modulo")

    def test_deterministic(self):
        for policy in POLICIES:
            assert partition(CELLS, 4, policy) \
                == partition(CELLS, 4, policy)


def _scheduler(n_cells=8, n_shards=4, n_workers=2, retries=1,
               clock=lambda: 0.0, backoff=None):
    plan = partition(list(range(n_cells)), n_shards, "range")
    outcomes = [CellOutcome(i) for i in range(n_cells)]
    sched = ShardScheduler(plan, list(range(n_cells)), n_workers,
                           retries, clock=clock, outcomes=outcomes,
                           backoff=backoff)
    return sched, outcomes


class TestScheduler:
    def test_home_shards_cover_all_shards(self):
        owned = [home_shards(w, 5, 2) for w in range(2)]
        assert sorted(s for shards in owned for s in shards) \
            == list(range(5))

    def test_acquire_prefers_home_shards(self):
        sched, _ = _scheduler()
        a = sched.acquire(0)
        assert a.shard in sched.home_shards(0)
        assert not a.stolen

    def test_double_acquire_rejected(self):
        sched, _ = _scheduler()
        sched.acquire(0)
        with pytest.raises(ShardStateError, match="acquired twice"):
            sched.acquire(0)

    def test_steals_from_longest_queue_when_homes_empty(self):
        # Worker 1 owns shards 1 and 3 (2 cells each with range over
        # 8 cells x 4 shards); drain them, then the next acquire must
        # steal from the longest remaining queue.
        sched, _ = _scheduler()
        for _ in range(4):
            a = sched.acquire(1)
            assert a.shard in (1, 3)
            sched.complete(1)
        stolen = sched.acquire(1)
        assert stolen.stolen
        assert len(sched.steals) == 1
        record = sched.steals[0]
        assert record.depths[record.shard] == max(record.depths)

    def test_fail_retries_then_gives_up(self):
        now = {"t": 0.0}
        sched, outcomes = _scheduler(retries=1, clock=lambda: now["t"],
                                     backoff=lambda _n: 5.0)
        a = sched.acquire(0)
        assert sched.fail(0, "boom") == RETRY
        # The retry is backing off: not dispatchable until the clock
        # passes ready_at.
        assert sched.acquire(0).cell != a.cell
        sched.complete(0)
        assert sched.next_ready_at() == 5.0
        now["t"] = 6.0
        again = sched.acquire(0)
        assert again.cell == a.cell
        assert again.attempt == 1
        assert sched.fail(0, "boom again") == GAVE_UP
        assert outcomes[a.cell].status == FAILED
        assert outcomes[a.cell].error == "boom again"

    def test_unacquire_restores_fifo_and_attempt_count(self):
        sched, outcomes = _scheduler()
        a = sched.acquire(0)
        sched.unacquire(0)
        assert outcomes[a.cell].attempts == 0
        assert sched.acquire(0).cell == a.cell

    def test_abandon_requeues_with_attempt_counted(self):
        sched, outcomes = _scheduler()
        a = sched.acquire(0)
        sched.abandon(0)
        assert outcomes[a.cell].attempts == 1
        assert a.cell in sched.remaining()
        assert not sched.inflight

    def test_duplicate_completion_rejected(self):
        sched, _ = _scheduler(n_cells=2, n_shards=1, n_workers=2)
        a = sched.acquire(0)
        sched.complete(0)
        b = sched.acquire(0)
        assert b.cell != a.cell
        with pytest.raises(ShardStateError,
                           match="no in-flight cell"):
            sched.complete(1)

    def test_finished_after_all_terminal(self):
        sched, _ = _scheduler(n_cells=3, n_shards=2, n_workers=1,
                              retries=0)
        while not sched.finished:
            assignment = sched.acquire(0)
            assert assignment is not None
            sched.complete(0)
        assert sched.completed == [0, 1, 2]
        assert sched.remaining() == []


class TestShardedExecution:
    def test_sharded_matches_serial_bit_exact(self):
        serial = run_resilient(_square, CELLS, jobs=1)
        sharded = run_resilient(_square, CELLS, jobs=2, shards=3)
        assert sharded.results == serial.results == EXPECTED
        info = sharded.report.shards
        assert info is not None
        assert info.n_shards == 3
        assert sum(info.cells_done.values()) == len(CELLS)
        assert "sharded 3x" in sharded.report.summary()

    def test_env_routes_through_shards(self, monkeypatch):
        monkeypatch.setenv(shard.SHARDS_ENV, "2")
        monkeypatch.setenv(shard.POLICY_ENV, "range")
        swept = run_resilient(_square, CELLS, jobs=2)
        assert swept.results == EXPECTED
        assert swept.report.shards.policy == "range"

    def test_fault_retry_recovers_bit_exact(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=5,times=1")
        monkeypatch.setenv(resilience.RETRIES_ENV, "2")
        faults.reset()
        swept = run_resilient(_square, CELLS, jobs=2, shards=2)
        assert swept.results == EXPECTED
        assert swept.report.outcomes[5].status == resilience.RETRIED

    def test_unpicklable_work_degrades_to_serial(self):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            swept = run_resilient(lambda x: x + 1, CELLS, jobs=1,
                                  shards=4)
        assert swept.results == [x + 1 for x in CELLS]
        assert swept.report.shards is None

    def test_single_shard_uses_flat_path(self):
        swept = run_resilient(_square, CELLS, jobs=1, shards=1)
        assert swept.results == EXPECTED
        assert swept.report.shards is None


class TestShardResume:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        return tmp_path

    def test_journal_layout_is_per_shard(self, cache_dir, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=7")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        faults.reset()
        with pytest.raises(SweepError):
            run_resilient(_square, CELLS, jobs=2, label="layout",
                          shards=3)
        entries = sorted((cache_dir / "journal").rglob("cell-*.pkl"))
        assert entries, "completed cells must be journaled"
        assert all(p.parent.name.startswith("shard-") for p in entries)

    def test_kill_then_resume_with_different_shard_count(
            self, cache_dir, monkeypatch):
        baseline = run_resilient(_square, CELLS, jobs=1)

        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=4")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        faults.reset()
        with pytest.raises(SweepError) as exc_info:
            run_resilient(_square, CELLS, jobs=2, label="resume-x",
                          shards=2)
        assert exc_info.value.report.failed_cells == [4]
        assert list((cache_dir / "journal").iterdir()), \
            "journal must survive a failed sweep"

        monkeypatch.delenv(faults.FAULTS_ENV)
        monkeypatch.setenv(resilience.RETRIES_ENV, "2")
        faults.reset()
        resumed = run_resilient(_square, CELLS, jobs=2,
                                label="resume-x", shards=5)
        assert resumed.results == baseline.results == EXPECTED
        report = resumed.report
        assert report.resumed_cells, \
            "the second run must reuse journaled cells"
        assert 4 not in report.resumed_cells
        assert not list((cache_dir / "journal").iterdir()), \
            "journal must be discarded after success"

    def test_sharded_journal_resumes_serially_too(self, cache_dir,
                                                  monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=2")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        faults.reset()
        with pytest.raises(SweepError):
            run_resilient(_square, CELLS, jobs=2, label="to-serial",
                          shards=4)
        monkeypatch.delenv(faults.FAULTS_ENV)
        faults.reset()
        resumed = run_resilient(_square, CELLS, jobs=1,
                                label="to-serial")
        assert resumed.results == EXPECTED
        assert resumed.report.resumed_cells


class TestFig6Sharded:
    """The PR's acceptance scenario at unit-test scale."""

    BUDGET = 2_000

    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        return tmp_path

    def test_sharded_fig6_bit_identical_to_serial(self, monkeypatch):
        from repro.experiments.fig6 import run_fig6

        serial = run_fig6(history_lengths=(6, 8), budget=self.BUDGET)
        drain_reports()
        monkeypatch.setenv(shard.SHARDS_ENV, "2")
        monkeypatch.setenv(resilience.JOBS_ENV
                           if hasattr(resilience, "JOBS_ENV")
                           else JOBS_ENV, "2")
        sharded = run_fig6(history_lengths=(6, 8), budget=self.BUDGET)
        assert sharded == serial
        report = next(r for r in drain_reports() if r.label == "fig6")
        assert report.shards is not None
        assert report.shards.n_shards == 2

    def test_kill_resume_cycle_stays_bit_exact(self, cache_dir,
                                               monkeypatch):
        from repro.experiments.fig6 import run_fig6

        serial = run_fig6(history_lengths=(6, 8), budget=self.BUDGET)
        drain_reports()

        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=2")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        monkeypatch.setenv(JOBS_ENV, "2")
        monkeypatch.setenv(shard.SHARDS_ENV, "2")
        faults.reset()
        with pytest.raises(SweepError):
            run_fig6(history_lengths=(6, 8), budget=self.BUDGET)
        assert list((cache_dir / "journal").iterdir())
        drain_reports()

        monkeypatch.delenv(faults.FAULTS_ENV)
        monkeypatch.setenv(resilience.RETRIES_ENV, "2")
        monkeypatch.setenv(shard.SHARDS_ENV, "3")
        faults.reset()
        resumed = run_fig6(history_lengths=(6, 8), budget=self.BUDGET)
        assert resumed == serial
        report = next(r for r in drain_reports() if r.label == "fig6")
        assert report.resumed_cells, "resume must reuse journaled cells"
