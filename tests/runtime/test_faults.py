"""Fault-injection harness: spec parsing and artifact corruption."""

import pytest

from repro.runtime import cache, faults


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParseSpec:
    def test_empty_and_unset(self):
        assert faults.parse_spec(None) == ()
        assert faults.parse_spec("") == ()
        assert faults.parse_spec("   ") == ()

    def test_crash_directive(self):
        fault, = faults.parse_spec("crash:cell=3")
        assert fault == faults.Fault("crash", "cell", "3", 1)

    def test_times_option(self):
        fault, = faults.parse_spec("fail:cell=2,times=3")
        assert fault.action == "fail"
        assert fault.times == 3

    def test_corrupt_directive(self):
        fault, = faults.parse_spec("corrupt:trace=go")
        assert fault == faults.Fault("corrupt", "trace", "go", 1)

    def test_multiple_directives(self):
        parsed = faults.parse_spec("crash:cell=1; hang:cell=2")
        assert [f.action for f in parsed] == ["crash", "hang"]

    def test_whitespace_tolerated(self):
        fault, = faults.parse_spec("  hang : cell=5 ".replace(" : ", ":"))
        assert fault.action == "hang"

    @pytest.mark.parametrize("bad", [
        "explode:cell=1",        # unknown action
        "crash",                 # no target
        "crash:cell",            # no value
        "crash:cell=x",          # non-integer cell
        "crash:cell=-1",         # negative cell
        "crash:budget=3",        # wrong target key
        "corrupt:weights=go",    # unknown artifact kind
        "corrupt:trace=",        # empty name
        "crash:cell=1,times=0",  # times < 1
        "crash:cell=1,times=x",  # non-integer times
        "crash:cell=1,depth=2",  # unknown option
    ])
    def test_invalid_specs_name_the_variable(self, bad):
        with pytest.raises(ValueError, match=faults.FAULTS_ENV):
            faults.parse_spec(bad)

    def test_validate_reads_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:cell=oops")
        with pytest.raises(ValueError, match=faults.FAULTS_ENV):
            faults.validate()


class TestCellFaults:
    def test_fail_fires_on_gated_attempts_only(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=4,times=2")
        for attempt in (0, 1):
            with pytest.raises(faults.FaultInjected):
                faults.apply_cell_faults(4, attempt, isolated=False)
        faults.apply_cell_faults(4, 2, isolated=False)  # clean
        faults.apply_cell_faults(3, 0, isolated=False)  # other cell

    def test_hard_faults_degrade_to_exceptions_in_serial(self,
                                                         monkeypatch):
        # Without a worker process to sacrifice, crash/hang must raise
        # (exercising the retry path) instead of killing the test run.
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:cell=0;hang:cell=1")
        with pytest.raises(faults.FaultInjected):
            faults.apply_cell_faults(0, 0, isolated=False)
        with pytest.raises(faults.FaultInjected):
            faults.apply_cell_faults(1, 0, isolated=False)


class TestCorruptArtifact:
    @pytest.fixture()
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        return tmp_path

    def test_corrupt_trace_quarantined_then_recomputed(self, cache_dir,
                                                       monkeypatch):
        from repro.workloads import get_workload, load_trace

        trace = load_trace("compress", 5_000)
        digest = cache.program_digest(get_workload("compress").build())
        cache.store_trace(trace, "compress", 5_000, digest)

        monkeypatch.setenv(faults.FAULTS_ENV, "corrupt:trace=compress")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load_trace("compress", 5_000, digest) is None
        quarantined = list((cache_dir / "quarantine").glob("*.npz"))
        assert len(quarantined) == 1

        # The fault fired once: a rewritten artifact reads back clean.
        cache.store_trace(trace, "compress", 5_000, digest)
        loaded = cache.load_trace("compress", 5_000, digest)
        assert loaded is not None
        assert loaded.n_instructions == trace.n_instructions

    def test_untargeted_artifacts_untouched(self, cache_dir,
                                            monkeypatch):
        from repro.workloads import get_workload, load_trace

        trace = load_trace("go", 5_000)
        digest = cache.program_digest(get_workload("go").build())
        cache.store_trace(trace, "go", 5_000, digest)
        monkeypatch.setenv(faults.FAULTS_ENV, "corrupt:trace=compress")
        assert cache.load_trace("go", 5_000, digest) is not None


class TestRequestFaults:
    def test_request_directives_parse(self):
        parsed = faults.parse_spec(
            "crash:request=3f2a;fail:request=kmp,times=2;"
            "corrupt:entry=3f2a")
        assert parsed[0] == faults.Fault("crash", "request", "3f2a", 1)
        assert parsed[1] == faults.Fault("fail", "request", "kmp", 2)
        assert parsed[2] == faults.Fault("corrupt", "entry", "3f2a", 1)

    def test_request_matching_by_prefix_and_workload(self):
        spec = faults.parse_spec("fail:request=ab12;crash:request=go")
        assert len(faults.request_faults("ab12ffff", "kmp", spec)) == 1
        assert len(faults.request_faults("0000ffff", "go", spec)) == 1
        assert faults.request_faults("0000ffff", "kmp", spec) == ()

    def test_soft_application_only_fires_fail(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "crash:request=ab;hang:request=ab")
        # crash/hang ride the translated cell faults, not the body.
        faults.apply_request_faults("abcd", "kmp", 0, hard=False)
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:request=ab")
        with pytest.raises(faults.FaultInjected):
            faults.apply_request_faults("abcd", "kmp", 0, hard=False)

    def test_hard_application_degrades_every_action(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:request=ab,times=2")
        with pytest.raises(faults.FaultInjected):
            faults.apply_request_faults("abcd", "kmp", 0, hard=True)
        with pytest.raises(faults.FaultInjected):
            faults.apply_request_faults("abcd", "kmp", 1, hard=True)
        faults.apply_request_faults("abcd", "kmp", 2, hard=True)

    def test_explicit_spec_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:request=ab,times=9")
        snapshot = faults.parse_spec(None)
        faults.apply_request_faults("abcd", "kmp", 0, hard=True,
                                    spec=snapshot)  # snapshot is empty

    def test_corrupt_entry_honours_times(self):
        spec = faults.parse_spec("corrupt:entry=ab,times=2")
        assert faults.corrupt_entry("abcd", "kmp", spec)
        assert faults.corrupt_entry("abcd", "kmp", spec)
        assert not faults.corrupt_entry("abcd", "kmp", spec)
        assert not faults.corrupt_entry("ffff", "kmp", spec)

    def test_cell_faults_reject_other_targets(self):
        with pytest.raises(ValueError, match="request"):
            faults.parse_spec("crash:slot=3")
