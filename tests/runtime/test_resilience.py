"""Resilient sweep execution: retries, deadlines, crash recovery, resume.

Every recovery path is driven through the deterministic fault-injection
harness (``REPRO_FAULT_SPEC``) — no sleeps, no signals, no flaky timing:
a fault fires on an exact (cell, attempt) pair, so each test proves one
recovery transition and the bit-exactness of the recovered results.
"""

import pytest

from repro.runtime import cache, faults, resilience
from repro.runtime.executor import JOBS_ENV, execute
from repro.runtime.resilience import (
    FAILED,
    OK,
    RETRIED,
    TIMED_OUT,
    Journal,
    SweepError,
    cell_timeout,
    drain_reports,
    resume_enabled,
    retry_limit,
    run_resilient,
)

CELLS = list(range(6))
EXPECTED = [x * x for x in CELLS]


def _square(x):
    """Top-level worker so it pickles into pool processes."""
    return x * x


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    """Hermetic knobs: no env leakage, no backoff sleeps, fresh reports."""
    for env in (JOBS_ENV, resilience.TIMEOUT_ENV, resilience.RETRIES_ENV,
                resilience.RESUME_ENV, faults.FAULTS_ENV):
        monkeypatch.delenv(env, raising=False)
    monkeypatch.setattr(resilience, "BACKOFF_BASE", 0.0)
    faults.reset()
    drain_reports()
    yield
    drain_reports()


class TestKnobs:
    def test_timeout_unset_means_no_deadline(self):
        assert cell_timeout() is None

    @pytest.mark.parametrize("value", ["0", "off", "none", ""])
    def test_timeout_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(resilience.TIMEOUT_ENV, value)
        assert cell_timeout() is None

    def test_timeout_seconds(self, monkeypatch):
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "2.5")
        assert cell_timeout() == 2.5

    @pytest.mark.parametrize("value", ["fast", "-3"])
    def test_timeout_garbage_rejected(self, monkeypatch, value):
        monkeypatch.setenv(resilience.TIMEOUT_ENV, value)
        with pytest.raises(ValueError, match=resilience.TIMEOUT_ENV):
            cell_timeout()

    def test_retries_default(self):
        assert retry_limit() == resilience.DEFAULT_RETRIES

    def test_retries_explicit(self, monkeypatch):
        monkeypatch.setenv(resilience.RETRIES_ENV, "5")
        assert retry_limit() == 5
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        assert retry_limit() == 0

    @pytest.mark.parametrize("value", ["many", "-1"])
    def test_retries_garbage_rejected(self, monkeypatch, value):
        monkeypatch.setenv(resilience.RETRIES_ENV, value)
        with pytest.raises(ValueError, match=resilience.RETRIES_ENV):
            retry_limit()

    def test_resume_default_on(self):
        assert resume_enabled() is True

    @pytest.mark.parametrize("value,expected", [
        ("0", False), ("off", False), ("no", False),
        ("1", True), ("on", True), ("yes", True),
    ])
    def test_resume_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(resilience.RESUME_ENV, value)
        assert resume_enabled() is expected

    def test_resume_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(resilience.RESUME_ENV, "maybe")
        with pytest.raises(ValueError, match=resilience.RESUME_ENV):
            resume_enabled()


class TestRetry:
    def test_retry_until_success_serial(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=1,times=2")
        monkeypatch.setenv(resilience.RETRIES_ENV, "3")
        sweep = run_resilient(_square, CELLS, jobs=1)
        assert sweep.results == EXPECTED
        outcome = sweep.report.outcomes[1]
        assert outcome.status == RETRIED
        assert outcome.attempts == 3
        assert sweep.report.retried_cells == [1]
        assert [o.status for i, o in enumerate(sweep.report.outcomes)
                if i != 1] == [OK] * 5

    def test_retries_exhausted_raises_sweep_error(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=2,times=99")
        monkeypatch.setenv(resilience.RETRIES_ENV, "1")
        with pytest.raises(SweepError) as excinfo:
            run_resilient(_square, CELLS, jobs=1)
        report = excinfo.value.report
        assert report.failed_cells == [2]
        assert report.outcomes[2].status == FAILED
        assert report.outcomes[2].attempts == 2  # initial + 1 retry
        assert "injected fail" in report.outcomes[2].error

    def test_serial_crash_fault_degrades_to_retry(self, monkeypatch):
        # No worker to sacrifice in serial mode: the crash becomes an
        # exception and the retry path recovers it.
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:cell=0")
        sweep = run_resilient(_square, CELLS, jobs=1)
        assert sweep.results == EXPECTED
        assert sweep.report.retried_cells == [0]

    def test_reports_are_drained_in_order(self, monkeypatch):
        run_resilient(_square, CELLS, jobs=1, label="alpha")
        run_resilient(_square, CELLS, jobs=1, label="beta")
        labels = [r.label for r in drain_reports()]
        assert labels == ["alpha", "beta"]
        assert drain_reports() == []


class TestCrashRecovery:
    def test_worker_crash_respawns_pool_and_reruns_lost_cell(
            self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:cell=1")
        sweep = run_resilient(_square, CELLS, jobs=2)
        assert sweep.results == EXPECTED
        # Exactly the crashed cell retried: single-worker slot pools
        # make fault attribution exact, so no innocent cell re-runs.
        assert sweep.report.retried_cells == [1]
        assert sweep.report.pool_respawns >= 1
        assert not sweep.report.degraded_serial

    def test_parallel_with_faults_matches_serial_clean(self,
                                                       monkeypatch):
        clean = run_resilient(_square, CELLS, jobs=1).results
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "crash:cell=0;fail:cell=4,times=1")
        faulty = run_resilient(_square, CELLS, jobs=2).results
        assert faulty == clean


class TestTimeout:
    def test_hung_worker_killed_and_cell_retried(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "hang:cell=2")
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "1")
        sweep = run_resilient(_square, CELLS, jobs=2)
        assert sweep.results == EXPECTED
        outcome = sweep.report.outcomes[2]
        assert outcome.status == TIMED_OUT
        assert outcome.timeouts == 1
        assert sweep.report.timed_out_cells == [2]

    def test_timeout_exhausting_retries_fails_the_cell(self,
                                                       monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "hang:cell=2,times=99")
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "0.5")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        with pytest.raises(SweepError) as excinfo:
            run_resilient(_square, CELLS, jobs=2)
        assert excinfo.value.report.failed_cells == [2]
        assert "deadline" in excinfo.value.report.outcomes[2].error


class TestJournalResume:
    @pytest.fixture()
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        return tmp_path

    def test_interrupted_sweep_resumes_bit_exact(self, cache_dir,
                                                 monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=3,times=99")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        with pytest.raises(SweepError):
            run_resilient(_square, CELLS, jobs=1, label="unit")
        journals = list((cache_dir / "journal").iterdir())
        assert len(journals) == 1  # completed cells checkpointed

        monkeypatch.delenv(faults.FAULTS_ENV)
        sweep = run_resilient(_square, CELLS, jobs=1, label="unit")
        assert sweep.results == EXPECTED  # resumed == fresh, bit-exact
        assert sweep.report.resumed_cells == [0, 1, 2, 4, 5]
        assert sweep.report.outcomes[3].attempts == 1  # only 3 re-ran
        assert not (cache_dir / "journal" / journals[0].name).exists()

    def test_parallel_resume_matches_serial_fresh(self, cache_dir,
                                                  monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=5,times=99")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        with pytest.raises(SweepError):
            run_resilient(_square, CELLS, jobs=2, label="par")
        monkeypatch.delenv(faults.FAULTS_ENV)
        resumed = run_resilient(_square, CELLS, jobs=2, label="par")
        fresh = run_resilient(_square, CELLS, jobs=1).results
        assert resumed.results == fresh
        assert resumed.report.resumed_cells  # really used the journal

    def test_no_resume_recomputes_every_cell(self, cache_dir,
                                             monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=3,times=99")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        with pytest.raises(SweepError):
            run_resilient(_square, CELLS, jobs=1, label="unit")
        monkeypatch.delenv(faults.FAULTS_ENV)
        monkeypatch.setenv(resilience.RESUME_ENV, "0")
        sweep = run_resilient(_square, CELLS, jobs=1, label="unit")
        assert sweep.results == EXPECTED
        assert sweep.report.resumed_cells == []

    def test_unlabeled_sweeps_never_journal(self, cache_dir):
        run_resilient(_square, CELLS, jobs=1)
        assert not (cache_dir / "journal").exists()

    def test_key_distinguishes_different_cells(self):
        assert Journal.sweep_key("x", _square, [1, 2]) != \
            Journal.sweep_key("x", _square, [1, 3])
        assert Journal.sweep_key("x", _square, [1, 2]) == \
            Journal.sweep_key("x", _square, [1, 2])

    def test_corrupt_journal_entry_is_recomputed(self, cache_dir,
                                                 monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "fail:cell=3,times=99")
        monkeypatch.setenv(resilience.RETRIES_ENV, "0")
        with pytest.raises(SweepError):
            run_resilient(_square, CELLS, jobs=1, label="unit")
        entry = next((cache_dir / "journal").glob("*/cell-0.pkl"))
        entry.write_bytes(b"torn write")
        monkeypatch.delenv(faults.FAULTS_ENV)
        sweep = run_resilient(_square, CELLS, jobs=1, label="unit")
        assert sweep.results == EXPECTED
        assert 0 not in sweep.report.resumed_cells


class TestDegradation:
    def test_unspawnable_pools_degrade_to_serial_with_warning(
            self, monkeypatch):
        def no_pool():
            raise OSError("fork failed")

        monkeypatch.setattr(resilience, "_new_pool", no_pool)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            sweep = run_resilient(_square, CELLS, jobs=4)
        assert sweep.results == EXPECTED
        assert sweep.report.degraded_serial
        assert sweep.report.n_ok == len(CELLS)

    def test_unpicklable_sweep_warns_and_runs_serial(self):
        double = lambda x: 2 * x  # noqa: E731 — deliberately unpicklable
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = execute(double, [1, 2, 3], jobs=4)
        assert results == [2, 4, 6]


class TestFig6EndToEnd:
    """The PR's acceptance scenario at unit-test scale."""

    BUDGET = 3_000

    def test_crash_fault_bit_identical_to_clean_serial(self,
                                                       monkeypatch):
        from repro.experiments.fig6 import run_fig6

        clean = run_fig6(budget=self.BUDGET)
        drain_reports()
        monkeypatch.setenv(faults.FAULTS_ENV, "crash:cell=3")
        monkeypatch.setenv(JOBS_ENV, "2")
        faulty = run_fig6(budget=self.BUDGET)
        assert faulty == clean  # aggregates bit-identical
        report = next(r for r in drain_reports() if r.label == "fig6")
        assert report.retried_cells == [3]  # exactly one retried cell
        assert report.failed_cells == []
