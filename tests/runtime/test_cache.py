"""Persistent disk cache: keying, round trips, atomicity, purging."""

import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.icache import CacheGeometry
from repro.runtime import cache
from repro.trace import segment_blocks
from repro.workloads import get_workload, load_trace

BUDGET = 5_000
NAME = "compress"
GEOMETRY = CacheGeometry.normal(8)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


@pytest.fixture(scope="module")
def trace():
    return load_trace(NAME, BUDGET)


@pytest.fixture(scope="module")
def digest():
    return cache.program_digest(get_workload(NAME).build())


class TestConfiguration:
    def test_default_is_home_cache(self, monkeypatch):
        monkeypatch.delenv(cache.CACHE_DIR_ENV, raising=False)
        root = cache.cache_dir()
        assert root is not None
        assert root.parts[-2:] == (".cache", "repro")

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, value)
        assert cache.cache_dir() is None
        assert not cache.enabled()

    def test_explicit_directory(self, cache_dir):
        assert cache.cache_dir() == cache_dir
        assert cache.enabled()

    def test_disabled_cache_is_inert(self, monkeypatch, trace, digest):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, "off")
        cache.store_trace(trace, NAME, BUDGET, digest)
        assert cache.load_trace(NAME, BUDGET, digest) is None
        assert cache.purge() == 0


class TestDigest:
    def test_stable_across_builds(self):
        a = cache.program_digest(get_workload(NAME).build())
        b = cache.program_digest(get_workload(NAME).build())
        assert a == b

    def test_differs_between_programs(self):
        a = cache.program_digest(get_workload("compress").build())
        b = cache.program_digest(get_workload("go").build())
        assert a != b


class TestTraceRoundTrip:
    def test_miss_then_hit(self, cache_dir, trace, digest):
        assert cache.load_trace(NAME, BUDGET, digest) is None
        cache.store_trace(trace, NAME, BUDGET, digest)
        loaded = cache.load_trace(NAME, BUDGET, digest)
        assert loaded is not None
        assert loaded.n_instructions == trace.n_instructions
        np.testing.assert_array_equal(loaded.pc, trace.pc)
        np.testing.assert_array_equal(loaded.kind, trace.kind)
        np.testing.assert_array_equal(loaded.taken, trace.taken)
        np.testing.assert_array_equal(loaded.target, trace.target)

    def test_digest_mismatch_misses(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        assert cache.load_trace(NAME, BUDGET, "0" * 16) is None

    def test_budget_mismatch_misses(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        assert cache.load_trace(NAME, BUDGET + 1, digest) is None

    def test_corrupt_file_is_a_miss(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        path.write_bytes(b"not a zip archive")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load_trace(NAME, BUDGET, digest) is None

    def test_no_tmp_files_left_behind(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        leftovers = [p for p in (cache_dir / "traces").iterdir()
                     if p.name.endswith(".tmp.npz")]
        assert leftovers == []


class TestBlocksRoundTrip:
    def test_miss_then_hit(self, cache_dir, trace, digest):
        blocks = segment_blocks(trace, GEOMETRY)
        assert cache.load_blocks(trace, GEOMETRY, NAME, BUDGET,
                                 digest) is None
        cache.store_blocks(blocks, NAME, BUDGET, digest)
        loaded = cache.load_blocks(trace, GEOMETRY, NAME, BUDGET, digest)
        assert loaded is not None
        assert loaded.trace is trace
        assert loaded.geometry == GEOMETRY
        np.testing.assert_array_equal(loaded.start, blocks.start)
        np.testing.assert_array_equal(loaded.n_instr, blocks.n_instr)
        np.testing.assert_array_equal(loaded.exit_kind, blocks.exit_kind)
        np.testing.assert_array_equal(loaded.exit_target,
                                      blocks.exit_target)
        np.testing.assert_array_equal(loaded.first_rec, blocks.first_rec)
        np.testing.assert_array_equal(loaded.n_recs, blocks.n_recs)

    def test_keyed_per_geometry(self, cache_dir, trace, digest):
        blocks = segment_blocks(trace, GEOMETRY)
        cache.store_blocks(blocks, NAME, BUDGET, digest)
        other = CacheGeometry.self_aligned(8)
        assert cache.load_blocks(trace, other, NAME, BUDGET,
                                 digest) is None

    def test_stale_record_count_is_a_miss(self, cache_dir, digest):
        short = load_trace(NAME, 2_000)
        long = load_trace(NAME, BUDGET)
        cache.store_blocks(segment_blocks(short, GEOMETRY), NAME, BUDGET,
                           digest)
        assert cache.load_blocks(long, GEOMETRY, NAME, BUDGET,
                                 digest) is None


class TestIntegrity:
    def test_checksum_sidecar_written(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        side = path.with_name(path.name + ".sha256")
        assert side.exists()
        assert len(side.read_text().strip()) == 64

    def test_tampered_artifact_quarantined(self, cache_dir, trace,
                                           digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # single-bit-ish corruption
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load_trace(NAME, BUDGET, digest) is None
        assert not path.exists()  # no longer shadowing the cache key
        assert (cache_dir / "quarantine" / path.name).exists()

    def test_quarantined_file_not_rehit(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        path.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            cache.load_trace(NAME, BUDGET, digest)
        # Second read is a plain miss — no warning, no re-quarantine.
        assert cache.load_trace(NAME, BUDGET, digest) is None

    def test_legacy_artifact_without_sidecar_loads(self, cache_dir,
                                                   trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        path.with_name(path.name + ".sha256").unlink()
        assert cache.load_trace(NAME, BUDGET, digest) is not None

    def test_corrupt_blocks_quarantined(self, cache_dir, trace, digest):
        cache.store_blocks(segment_blocks(trace, GEOMETRY), NAME,
                           BUDGET, digest)
        path, = (cache_dir / "blocks").glob("*.npz")
        path.write_bytes(b"not a zip archive")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load_blocks(trace, GEOMETRY, NAME, BUDGET,
                                     digest) is None
        assert (cache_dir / "quarantine" / path.name).exists()


class TestEvict:
    def test_no_bound_is_inert(self, cache_dir, trace, digest,
                               monkeypatch):
        monkeypatch.setenv(cache.MAX_BYTES_ENV, "off")
        cache.store_trace(trace, NAME, BUDGET, digest)
        assert cache.evict() == 0
        assert cache.load_trace(NAME, BUDGET, digest) is not None

    def test_evicts_oldest_until_under_bound(self, cache_dir, trace,
                                             digest):
        import os

        cache.store_trace(trace, NAME, BUDGET, digest)
        cache.store_trace(trace, NAME, BUDGET + 1, digest)
        old, new = sorted((cache_dir / "traces").glob("*.npz"),
                          key=lambda p: p.stat().st_mtime)
        os.utime(old, (1, 1))  # deterministic age order
        limit = new.stat().st_size * 2  # room for one artifact, not two
        assert cache.evict(limit) == 1
        assert not old.exists()
        assert new.exists()

    def test_quarantine_evicted_first(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning):
            cache.load_trace(NAME, BUDGET, digest)
        cache.store_trace(trace, NAME, BUDGET, digest)
        # Room for the good artifact (plus sidecar) but not also the
        # quarantined copy: the quarantine must be what goes.
        assert cache.evict(path.stat().st_size + 200) == 1
        assert not any((cache_dir / "quarantine").iterdir())
        assert cache.load_trace(NAME, BUDGET, digest) is not None

    def test_garbage_bound_rejected(self, monkeypatch):
        monkeypatch.setenv(cache.MAX_BYTES_ENV, "huge")
        with pytest.raises(ValueError, match=cache.MAX_BYTES_ENV):
            cache.max_cache_bytes()
        monkeypatch.setenv(cache.MAX_BYTES_ENV, "-1")
        with pytest.raises(ValueError, match=cache.MAX_BYTES_ENV):
            cache.max_cache_bytes()


class TestPurge:
    def test_purge_removes_artifacts(self, cache_dir, trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        cache.store_blocks(segment_blocks(trace, GEOMETRY), NAME, BUDGET,
                           digest)
        assert cache.purge() == 2
        assert cache.load_trace(NAME, BUDGET, digest) is None

    def test_purge_spares_foreign_files(self, cache_dir, trace, digest):
        foreign = cache_dir / "keep.txt"
        foreign.write_text("mine")
        cache.store_trace(trace, NAME, BUDGET, digest)
        cache.purge()
        assert foreign.exists()


class TestEvictionRace:
    """Readers racing a concurrent evictor must miss cleanly.

    Eviction deletes the artifact and its sidecar in two steps; a reader
    can observe any interleaving.  None of them may look like corruption
    — a quarantine warning per racing read would turn routine cache
    maintenance into a storm.
    """

    def test_artifact_vanishing_mid_verify_is_none(self, cache_dir,
                                                   trace, digest):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        path.unlink()  # evictor deleted the artifact, sidecar not yet
        assert cache._verify_checksum(path) is None

    def test_load_racing_eviction_is_a_clean_miss(self, cache_dir,
                                                  trace, digest,
                                                  monkeypatch):
        cache.store_trace(trace, NAME, BUDGET, digest)
        path, = (cache_dir / "traces").glob("*.npz")
        real_verify = cache._verify_checksum

        def evict_after_verify(target):
            verdict = real_verify(target)
            target.unlink(missing_ok=True)  # evictor wins the race here
            cache._checksum_path(target).unlink(missing_ok=True)
            return verdict

        monkeypatch.setattr(cache, "_verify_checksum", evict_after_verify)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load_trace(NAME, BUDGET, digest) is None

    def test_quarantine_of_vanished_file_is_silent(self, cache_dir):
        gone = cache_dir / "traces" / "already-evicted.npz"
        gone.parent.mkdir(parents=True, exist_ok=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.quarantine(gone, "checksum mismatch") is None

    def test_two_process_store_evict_load_stress(self, cache_dir, trace,
                                                 digest):
        """A child stores and evicts in a loop while we read.

        Every read must be a hit or a clean miss: zero quarantine
        warnings, and the quarantine directory stays empty.
        """
        src = str(Path(cache.__file__).resolve().parents[2])
        child_code = (
            "from repro.runtime import cache\n"
            "from repro.workloads import get_workload, load_trace\n"
            f"trace = load_trace({NAME!r}, {BUDGET})\n"
            f"digest = cache.program_digest("
            f"get_workload({NAME!r}).build())\n"
            "for _ in range(200):\n"
            f"    cache.store_trace(trace, {NAME!r}, {BUDGET}, digest)\n"
            "    cache.evict(limit=0)\n"
        )
        env = dict(os.environ, PYTHONPATH=src,
                   **{cache.CACHE_DIR_ENV: str(cache_dir)})
        child = subprocess.Popen([sys.executable, "-c", child_code],
                                 env=env)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                while child.poll() is None:
                    loaded = cache.load_trace(NAME, BUDGET, digest)
                    if loaded is not None:
                        assert loaded.n_records == trace.n_records
        finally:
            child.wait(timeout=120)
        assert child.returncode == 0
        quarantine_dir = cache_dir / cache.QUARANTINE_DIR
        assert not quarantine_dir.exists() \
            or not list(quarantine_dir.iterdir())
