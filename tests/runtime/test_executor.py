"""Sweep executor: job parsing, order preservation, parallel == serial."""

import os

import pytest

from repro.core import EngineConfig
from repro.icache import CacheGeometry
from repro.runtime import cache
from repro.runtime.executor import (
    JOBS_ENV,
    SuiteSpec,
    execute,
    n_jobs,
    run_suite_specs,
    unpicklable_reason,
    warm_fetch_inputs,
)

BUDGET = 5_000


def _square(x):
    """Top-level worker so it pickles into pool processes."""
    return x * x


class TestNJobs:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert n_jobs() == 1
        assert n_jobs(default=7) == 7

    def test_empty_uses_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "  ")
        assert n_jobs() == 1

    def test_positive_integer(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert n_jobs() == 4

    @pytest.mark.parametrize("value", ["auto", "0", "AUTO"])
    def test_auto_maps_to_cpu_count(self, monkeypatch, value):
        monkeypatch.setenv(JOBS_ENV, value)
        assert n_jobs() == (os.cpu_count() or 1)

    def test_garbage_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError, match=JOBS_ENV):
            n_jobs()

    def test_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "-2")
        with pytest.raises(ValueError, match=JOBS_ENV):
            n_jobs()


class TestExecute:
    def test_serial_map_preserves_order(self):
        assert execute(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        cells = list(range(20))
        assert execute(_square, cells, jobs=4) == \
            execute(_square, cells, jobs=1)

    def test_unpicklable_work_falls_back_to_serial(self):
        double = lambda x: 2 * x  # noqa: E731 — deliberately unpicklable
        with pytest.warns(RuntimeWarning, match="not picklable"):
            assert execute(double, [1, 2, 3], jobs=4) == [2, 4, 6]

    def test_empty_cells(self):
        assert execute(_square, [], jobs=4) == []

    def test_warm_hook_skipped_when_serial(self):
        calls = []
        execute(_square, [1, 2], jobs=1, warm=calls.append)
        assert calls == []


class TestUnpicklableReason:
    def test_picklable_work_has_no_reason(self):
        assert unpicklable_reason(_square, [1, 2, 3]) is None

    def test_unpicklable_function_is_named(self):
        double = lambda x: 2 * x  # noqa: E731
        reason = unpicklable_reason(double, [1])
        assert reason is not None
        assert "lambda" in reason and "not picklable" in reason

    def test_unpicklable_cell_is_indexed(self):
        cells = [1, lambda: None, 3]  # noqa: E731
        reason = unpicklable_reason(_square, cells)
        assert reason is not None
        assert "cell 1" in reason


class TestWarmFetchInputs:
    def test_bad_warm_cell_warns_but_does_not_raise(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        geometry = CacheGeometry.normal(8)
        with pytest.warns(RuntimeWarning, match="warm-up failed"):
            warm_fetch_inputs([("no-such-workload", geometry, BUDGET)],
                              jobs=1)

    def test_good_and_bad_cells_mix(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        geometry = CacheGeometry.normal(8)
        # Only the bad cell is reported; the good one warms normally.
        with pytest.warns(RuntimeWarning, match="failed for 1 input"):
            warm_fetch_inputs([("compress", geometry, BUDGET),
                               ("no-such-workload", geometry, BUDGET)],
                              jobs=1)

    def test_disabled_cache_is_a_noop(self, monkeypatch):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, "off")
        warm_fetch_inputs([("no-such-workload", CacheGeometry.normal(8),
                            BUDGET)], jobs=1)  # must not raise or warn


class TestSuiteSpecs:
    @pytest.fixture(scope="class")
    def spec(self):
        return SuiteSpec(suite="int",
                         config=EngineConfig(
                             geometry=CacheGeometry.normal(8)),
                         budget=BUDGET)

    def test_parallel_aggregate_identical_to_serial(self, spec,
                                                    monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        serial, = run_suite_specs([spec])
        monkeypatch.setenv(JOBS_ENV, "4")
        parallel, = run_suite_specs([spec])
        assert parallel.n_instructions == serial.n_instructions
        assert parallel.fetch_cycles == serial.fetch_cycles
        assert parallel.penalty_cycles == serial.penalty_cycles
        assert list(parallel.per_program) == list(serial.per_program)
        for name, stats in serial.per_program.items():
            assert parallel.per_program[name] == stats

    def test_batch_order_matches_spec_order(self, spec):
        fp_spec = SuiteSpec(suite="fp", config=spec.config, budget=BUDGET)
        int_agg, fp_agg = run_suite_specs([spec, fp_spec], jobs=1)
        from repro.workloads import SPECFP95, SPECINT95

        assert list(int_agg.per_program) == SPECINT95
        assert list(fp_agg.per_program) == SPECFP95
