"""Phase-timing hook (``REPRO_PROFILE``) unit and wiring tests."""

import pytest

from repro.runtime import profile
from repro.runtime.profile import PROFILE_ENV


@pytest.fixture(autouse=True)
def _clean_totals():
    profile.reset()
    yield
    profile.reset()


class TestKnob:
    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profile.enabled()

    @pytest.mark.parametrize("raw", ["", "0", "off", "no", "false"])
    def test_false_values(self, raw, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert not profile.enabled()

    @pytest.mark.parametrize("raw", ["1", "on", "yes", "TRUE"])
    def test_true_values(self, raw, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert profile.enabled()

    def test_garbage_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "maybe")
        with pytest.raises(ValueError, match=PROFILE_ENV):
            profile.enabled()


class TestAccounting:
    def test_phase_accumulates_when_enabled(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        with profile.phase("engine"):
            pass
        with profile.phase("engine"):
            pass
        totals = profile.snapshot()
        assert totals["engine"] >= 0.0
        assert set(totals) == {"engine"}

    def test_phase_is_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        with profile.phase("engine"):
            pass
        assert profile.snapshot() == {}

    def test_delta_since_reports_only_new_time(self, monkeypatch):
        profile.record("trace", 1.0)
        base = profile.snapshot()
        profile.record("trace", 0.5)
        profile.record("compile", 0.25)
        delta = profile.delta_since(base)
        assert delta["trace"] == pytest.approx(0.5)
        assert delta["compile"] == pytest.approx(0.25)

    def test_format_orders_canonical_phases_first(self):
        text = profile.format_phases(
            {"aggregate": 0.5, "zeta": 0.25, "trace": 1.0})
        assert text == "trace=1.000s aggregate=0.500s zeta=0.250s"

    def test_emit_cell_writes_stderr(self, capsys):
        profile.emit_cell("DualBlockEngine/gcc", {"engine": 0.125})
        err = capsys.readouterr().err
        assert err == "[profile] DualBlockEngine/gcc: engine=0.125s\n"


class TestSweepReportWiring:
    def test_sweep_report_carries_phase_seconds(self, monkeypatch):
        from repro.runtime.resilience import run_resilient

        monkeypatch.setenv(PROFILE_ENV, "1")

        def cell(x):
            with profile.phase("engine"):
                return x * 2

        result = run_resilient(cell, [1, 2, 3], jobs=1, label=None)
        assert result.results == [2, 4, 6]
        assert "engine" in result.report.phase_seconds
        assert "phases:" in result.report.summary()

    def test_report_empty_when_profiling_off(self, monkeypatch):
        from repro.runtime.resilience import run_resilient

        monkeypatch.delenv(PROFILE_ENV, raising=False)
        result = run_resilient(lambda x: x, [1], jobs=1, label=None)
        assert result.report.phase_seconds == {}
        assert "phases:" not in result.report.summary()
