"""The discrete-event scheduler testbed and its seeded property suite.

These tests drive the *real* ``ShardScheduler`` through the virtual
clock of :mod:`repro.runtime.sim` — crashes, hangs and stragglers land
at exact simulated instants, so every scheduling invariant (no cell
lost or duplicated, steals only from the longest queue, bounded
attempts, makespan within the greedy bound, resume-after-kill
equivalence) is asserted deterministically across many seeds in well
under the wall-clock one real crash test would need.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.runtime import sim
from repro.runtime.sim import (
    SCENARIOS,
    SimSpec,
    SimSpecError,
    check_resume_equivalence,
    makespan_lower_bound,
    replay_trace,
    save_trace,
    simulate,
    verify_invariants,
)

TRACES_DIR = Path(__file__).parent / "sim_traces"

#: Seeds for the in-suite property sweeps (the CI battery runs more).
SEEDS = range(50)


class TestSpecValidation:
    def test_round_trip(self):
        spec = SimSpec(seed=3, n_cells=8, n_shards=2, n_workers=2,
                       crash_rate=0.1, retries=4)
        assert SimSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(SimSpecError, match="unknown spec fields"):
            SimSpec.from_dict({"seed": 1, "n_cells": 2, "n_shards": 1,
                               "n_workers": 1, "chaos": True})

    @pytest.mark.parametrize("overrides,message", [
        (dict(n_cells=0), "n_cells"),
        (dict(n_workers=0), "n_workers"),
        (dict(policy="modulo"), "policy"),
        (dict(cost_model="gaussian"), "cost model"),
        (dict(crash_rate=1.0), "crash_rate"),
        (dict(crash_rate=0.6, hang_rate=0.5, timeout=1.0),
         "must be < 1"),
        (dict(hang_rate=0.2), "requires a timeout"),
        (dict(timeout=0.0), "timeout"),
        (dict(retries=-1), "retries"),
    ])
    def test_invalid_specs_rejected(self, overrides, message):
        base = dict(seed=0, n_cells=4, n_shards=2, n_workers=2)
        with pytest.raises(SimSpecError, match=message):
            SimSpec(**{**base, **overrides}).validate()

    def test_cell_count_mismatch_rejected(self):
        spec = SimSpec(seed=0, n_cells=4, n_shards=2, n_workers=2)
        with pytest.raises(SimSpecError, match="n_cells=4"):
            simulate(spec, cells=["only", "two"])


class TestDeterminism:
    @pytest.mark.parametrize("name,params", SCENARIOS)
    def test_same_spec_same_event_log(self, name, params):
        spec = SimSpec(seed=13, **params)
        first = simulate(spec)
        second = simulate(spec)
        assert first.event_rows() == second.event_rows(), name
        assert first.makespan == second.makespan

    def test_different_seeds_differ(self):
        params = dict(n_cells=20, n_shards=4, n_workers=3,
                      cost_model="skewed", speed_model="mixed")
        a = simulate(SimSpec(seed=1, **params))
        b = simulate(SimSpec(seed=2, **params))
        assert a.event_rows() != b.event_rows()


class TestInvariantsAcrossSeeds:
    """The seeded property suite: ≥50 seeds per fault scenario."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_storms_lose_and_duplicate_nothing(self, seed):
        spec = SimSpec(seed=seed, n_cells=20, n_shards=4, n_workers=4,
                       crash_rate=0.25, retries=5)
        result = simulate(spec)
        assert verify_invariants(result) == []
        assert not result.failed, \
            "5 retries must outlast a 25% crash rate here"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hangs_rescued_by_deadline_kills(self, seed):
        spec = SimSpec(seed=seed, n_cells=16, n_shards=3, n_workers=4,
                       hang_rate=0.2, timeout=3.0, retries=5,
                       speed_model="mixed")
        result = simulate(spec)
        assert verify_invariants(result) == []

    def test_skewed_costs_provoke_steals(self):
        stole = 0
        for seed in SEEDS:
            spec = SimSpec(seed=seed, n_cells=32, n_shards=4,
                           n_workers=3, cost_model="skewed")
            result = simulate(spec)
            assert verify_invariants(result) == []
            stole += len(result.steals)
        assert stole > 0, \
            "skewed schedules across 50 seeds must steal at least once"

    @pytest.mark.parametrize("seed", range(10))
    def test_makespan_within_greedy_bound(self, seed):
        spec = SimSpec(seed=seed, n_cells=24, n_shards=4, n_workers=4,
                       cost_model="bimodal")
        result = simulate(spec)
        bound = sim.MAKESPAN_FACTOR * makespan_lower_bound(spec)
        assert result.makespan <= bound + 1e-9

    def test_retry_budget_exhaustion_fails_cleanly(self):
        # retries=0 under a heavy crash rate: some cells must fail, and
        # a failed cell must have completed zero times.
        failed_somewhere = False
        for seed in SEEDS:
            spec = SimSpec(seed=seed, n_cells=10, n_shards=2,
                           n_workers=2, crash_rate=0.4, retries=0)
            result = simulate(spec)
            assert verify_invariants(result) == []
            failed_somewhere = failed_somewhere or bool(result.failed)
        assert failed_somewhere


class TestResumeEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_kill_and_resume_with_different_shard_count(self, seed):
        spec = SimSpec(seed=seed, n_cells=32, n_shards=4, n_workers=3,
                       cost_model="skewed")
        assert check_resume_equivalence(spec, resume_shards=5) is None

    def test_resumed_cells_never_reexecute(self):
        spec = SimSpec(seed=9, n_cells=12, n_shards=3, n_workers=2)
        full = simulate(spec)
        done = full.completed[:7]
        resumed = simulate(
            dataclasses.replace(spec, n_shards=2), done=done)
        assert verify_invariants(resumed) == []
        for index in done:
            assert resumed.completions[index] == 0
            assert resumed.outcomes[index].resumed

    def test_detects_reexecution_of_resumed_cells(self):
        # Mutation canary: verify_invariants must flag a schedule that
        # re-runs a journaled cell, not just trust the scheduler.
        spec = SimSpec(seed=2, n_cells=6, n_shards=2, n_workers=2)
        result = simulate(spec, done=[0])
        result.outcomes[1].resumed = True  # 1 actually re-executed
        problems = verify_invariants(result)
        assert any("re-executed" in p for p in problems)


class TestTraces:
    def test_round_trip_and_replay(self, tmp_path):
        spec = SimSpec(seed=21, n_cells=20, n_shards=4, n_workers=4,
                       crash_rate=0.2, retries=4)
        result = simulate(spec)
        path = save_trace(result, tmp_path / "trace.json")
        assert replay_trace(path) is None
        data = sim.load_trace(path)
        assert data["spec"] == spec
        assert data["events"] == result.event_rows()

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "spec": {},
                                    "events": []}))
        with pytest.raises(SimSpecError, match="unsupported trace"):
            sim.load_trace(path)

    def test_tampered_trace_is_detected(self, tmp_path):
        spec = SimSpec(seed=4, n_cells=8, n_shards=2, n_workers=2)
        path = save_trace(simulate(spec), tmp_path / "trace.json")
        data = json.loads(path.read_text())
        data["events"][0][2] = 99  # reassign the first event's worker
        path.write_text(json.dumps(data))
        reason = replay_trace(path)
        assert reason is not None and "diverged" in reason

    def test_committed_corpus_replays_bit_exact(self):
        paths = sorted(TRACES_DIR.glob("*.json"))
        assert paths, "the committed sim-trace corpus must not be empty"
        for path in paths:
            assert replay_trace(path) is None, path.name


class TestBatteryCli:
    def test_battery_runs_clean(self):
        assert sim.run_battery(3) == []

    def test_main_reports_success(self, capsys):
        assert sim.main(["--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_main_replays_corpus_trace(self, capsys):
        path = sorted(TRACES_DIR.glob("*.json"))[0]
        assert sim.main(["--replay", str(path)]) == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_failing_battery_writes_trace_artifacts(
            self, tmp_path, monkeypatch):
        real_verify = sim.verify_invariants

        def broken_verify(result):
            return real_verify(result) + ["synthetic violation"]

        monkeypatch.setattr(sim, "verify_invariants", broken_verify)
        violations = sim.run_battery(1, traces_dir=tmp_path)
        assert violations
        assert list(tmp_path.glob("sim-*.json")), \
            "failing schedules must be saved for replay"
