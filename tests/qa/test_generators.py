"""Workload families and case sampling: determinism and legality."""

import random

import pytest

from repro.qa.cases import ENGINE_KINDS, CaseError, is_valid_case
from repro.qa.generators import (
    FAMILIES,
    CaseStream,
    build_family_program,
    case_stream,
    sample_case,
)
from repro.isa.kinds import InstrKind


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_families_build_and_run(family):
    from repro.qa.cases import QACase

    program = build_family_program(family, {})
    assert len(program.instructions) > 0
    case = QACase(engine="single", family=family, budget=2000)
    assert case.fetch_input().trace.n_records > 0


def test_unknown_family_is_a_case_error():
    with pytest.raises(CaseError):
        build_family_program("fractal", {})


def test_family_builders_are_deterministic():
    params = {"depth": 2, "trips": 5, "rounds": 2}
    a = build_family_program("loops", params)
    b = build_family_program("loops", params)
    assert [str(i) for i in a.instructions] \
        == [str(i) for i in b.instructions]


def test_towers_overflow_small_ras():
    """depth beyond any RAS size produces nested calls to match."""
    program = build_family_program("towers", {"depth": 40, "rounds": 1})
    kinds = program.static_code().kind
    assert (kinds == int(InstrKind.CALL)).sum() >= 40


def test_correlated_emits_branch_pairs():
    program = build_family_program(
        "correlated", {"pairs": 3, "iterations": 2})
    kinds = program.static_code().kind
    # Two conditionals per pair, plus the loop branch.
    assert (kinds == int(InstrKind.COND)).sum() >= 6

def test_case_stream_is_index_deterministic(qa_seed):
    stream_a = case_stream(qa_seed)
    drawn = [stream_a.next()[1] for _ in range(8)]
    stream_b = CaseStream(qa_seed, ENGINE_KINDS)
    # case(i) depends only on (seed, i): random access == iteration.
    for i, case in enumerate(drawn):
        assert stream_b.case(i) == case
    assert case_stream(qa_seed + 1).next()[1] != drawn[0]


def test_case_stream_cycles_engines(qa_seed):
    stream = case_stream(qa_seed)
    engines = [stream.next()[1].engine for _ in range(8)]
    assert engines == list(ENGINE_KINDS) * 2


def test_sampled_cases_are_engine_legal(qa_seed):
    rng = random.Random(qa_seed)
    for engine in ENGINE_KINDS:
        for _ in range(10):
            case = sample_case(rng, engine)
            assert case.engine == engine
            assert is_valid_case(case), case.to_dict()
            if engine != "multi":
                assert case.n_blocks == 2
            if engine != "two_ahead":
                assert case.serialization_penalty == 0


def test_stream_rejects_unknown_engines(qa_seed):
    with pytest.raises(CaseError):
        CaseStream(qa_seed, ("single", "quantum"))
    with pytest.raises(CaseError):
        CaseStream(qa_seed, ())
