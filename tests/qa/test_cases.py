"""The QACase model: validation, JSON round-trip, digests, artifacts."""

import pytest

from repro.qa.cases import (
    CASE_FORMAT,
    CaseError,
    QACase,
    case_engine,
    is_valid_case,
    load_case,
)


def _case(**kw):
    kw.setdefault("engine", "single")
    return QACase(**kw)


def test_round_trip_preserves_everything():
    case = _case(engine="multi", geometry_kind="extend", block_width=4,
                 family="loops", params={"depth": 2, "trips": 5},
                 budget=900, repeats=2,
                 config={"history_length": 6}, n_blocks=3)
    assert QACase.from_dict(case.to_dict()) == case


def test_digest_is_stable_and_content_sensitive():
    a = _case(budget=500)
    b = _case(budget=500)
    c = _case(budget=501)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()
    assert len(a.digest()) == 12


def test_validation_rejects_bad_fields():
    with pytest.raises(CaseError):
        _case(engine="quad")
    with pytest.raises(CaseError):
        _case(geometry_kind="weird")
    with pytest.raises(CaseError):
        _case(budget=10)
    with pytest.raises(CaseError):
        _case(repeats=0)
    with pytest.raises(CaseError):
        QACase.from_dict({"engine": "single", "unexpected": 1})


def test_engine_constraints_surface_as_case_errors():
    # dual/multi hold the BIT in the i-cache; a separate table is a
    # configuration error the engine itself raises.
    case = _case(engine="dual", config={"bit_entries": 8})
    with pytest.raises(CaseError):
        case_engine(case)
    assert not is_valid_case(case)
    assert is_valid_case(_case(engine="dual"))


def test_engine_config_merges_track_recovery():
    case = _case(track_recovery=True, config={"history_length": 4})
    config = case.engine_config()
    assert config.track_recovery
    assert config.history_length == 4


def test_all_four_engines_construct():
    for engine in ("single", "dual", "multi", "two_ahead"):
        assert case_engine(_case(engine=engine)) is not None


def test_load_case_checks_format_tag():
    case = _case()
    assert load_case({"format": CASE_FORMAT,
                      "case": case.to_dict()}) == case
    assert load_case(case.to_dict()) == case          # bare dict form
    with pytest.raises(CaseError):
        load_case({"format": 99, "case": case.to_dict()})
    with pytest.raises(CaseError):
        load_case({"format": CASE_FORMAT, "case": "not-an-object"})


def test_label_names_the_interesting_bits():
    case = _case(engine="multi", n_blocks=3, family="near")
    label = case.label()
    assert "multi" in label and "x3" in label and "near" in label
