"""The differential oracle and the mutation canary.

The canary is the harness's own smoke detector: deliberately corrupt
one index computation in ``core/fast.py`` (flip the low bit of every
PHT entry index) and require the oracle to (a) catch it within a few
cases and (b) shrink the finding to a minimal replayable artifact.  If
this test ever passes with the mutation in place, the oracle has gone
blind.
"""

import json
import random

import pytest

from repro.core import fast
from repro.qa.campaign import check_full
from repro.qa.cases import QACase
from repro.qa.corpus import load_artifact, write_artifact
from repro.qa.generators import case_stream
from repro.qa.oracle import check_case, engine_mode_env, run_mode
from repro.qa.shrink import shrink_case


def test_sampled_cases_pass_oracle(qa_seed):
    """A slice of the campaign stream is clean on a healthy build."""
    stream = case_stream(qa_seed)
    for _ in range(8):
        index, case = stream.next()
        verdict = check_case(case)
        assert verdict.passed, f"case {index}: {verdict.summary()}"


def test_oracle_checks_full_state(qa_seed):
    """Both mode runs expose stats and complete predictor state."""
    _idx, case = case_stream(qa_seed).next()
    verdict = check_case(case)
    assert verdict.passed
    for run in (verdict.scalar, verdict.fast):
        assert run.stats and run.state is not None
        assert "pht" in run.state and "targets" in run.state


def test_engine_mode_env_restores(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "scalar")
    with engine_mode_env("fast"):
        import os
        assert os.environ["REPRO_ENGINE"] == "fast"
    import os
    assert os.environ["REPRO_ENGINE"] == "scalar"


def test_crash_in_one_mode_is_a_finding(monkeypatch, qa_seed):
    _idx, case = case_stream(qa_seed).next()

    def boom(self):
        raise RuntimeError("injected kernel fault")

    monkeypatch.setattr(fast._Run, "pht_bases", boom)
    verdict = check_case(case)
    assert not verdict.passed
    assert "crashed" in (verdict.reason or "")
    assert "injected kernel fault" in verdict.reason


@pytest.fixture
def broken_pht_indexing(monkeypatch):
    """Flip the low entry bit of every fast-engine PHT base index —
    the canonical one-offset kernel mutation."""
    original = fast._Run.pht_bases

    def mutated(self):
        bases = original(self)
        return (bases // self.pht.block_width ^ 1) * self.pht.block_width

    monkeypatch.setattr(fast._Run, "pht_bases", mutated)


def test_mutation_canary_is_caught_and_shrunk(broken_pht_indexing,
                                              qa_seed, tmp_path):
    stream = case_stream(qa_seed)
    finding = None
    for _ in range(20):
        index, case = stream.next()
        reason = check_full(case)
        if reason is not None:
            finding = (index, case, reason)
            break
    assert finding is not None, \
        "oracle missed a corrupted PHT index in 20 cases"
    index, case, reason = finding
    assert reason.startswith("differential:")

    result = shrink_case(case, lambda c: check_full(c) is not None,
                         max_probes=80)
    shrunk = result.case
    assert check_full(shrunk) is not None
    # Minimal means minimal: the floor budget, no warm re-runs, and no
    # leftover config overrides beyond what the failure needs.
    assert shrunk.budget <= case.budget
    assert shrunk.repeats == 1

    path = write_artifact(shrunk, reason, tmp_path,
                          found={"seed": qa_seed, "index": index})
    loaded, recorded = load_artifact(path)
    assert loaded == shrunk
    assert recorded == reason
    payload = json.loads(path.read_text())
    assert payload["format"] == 1
    assert payload["found"] == {"seed": qa_seed, "index": index}


def test_canary_case_is_clean_without_mutation(qa_seed):
    """The same stream the canary searches is clean when unpatched, so
    the canary's failures are attributable to the mutation alone."""
    stream = case_stream(qa_seed)
    for _ in range(3):
        _index, case = stream.next()
        assert check_full(case) is None


def test_run_mode_repeats_warm_engine(qa_seed):
    rng = random.Random(qa_seed)
    case = QACase(engine="single", family="loops",
                  params={"depth": 2, "trips": 4 + rng.randint(0, 3)},
                  budget=800, repeats=3)
    run = run_mode(case, "scalar")
    assert not run.crashed
    assert len(run.stats) == 3
    # Warm tables learn: later runs never mispredict more.
    first, last = run.stats[0], run.stats[-1]
    assert last.penalty_cycles <= first.penalty_cycles
