"""Property tests for the small predictor structures.

Seeded stdlib ``random`` only (the session seed comes from the
``qa_seed`` fixture), driving the structures against simple reference
models: a saturating counter is a clamped integer, a GHR is a masked
shift register, a circular RAS is a bounded stack that drops its oldest
entry on overflow.
"""

import random

import pytest

from repro.predictors.counters import (
    COUNTER_INIT,
    COUNTER_MAX,
    COUNTER_MIN,
    SaturatingCounter,
    counter_predicts_taken,
    counter_update,
)
from repro.predictors.ghr import GlobalHistory, pack_block_outcomes
from repro.qa.generators import counter_op_stream, ras_op_stream
from repro.targets.ras import ReturnAddressStack


@pytest.fixture
def rng(qa_seed, request):
    """Per-test RNG derived from the session seed and the test's id."""
    return random.Random(f"{qa_seed}:{request.node.nodeid}")


# ----------------------------------------------------------------------
# Saturating counters
# ----------------------------------------------------------------------

def test_counter_stays_in_bounds(rng):
    state = COUNTER_INIT
    for taken in counter_op_stream(rng, 500):
        state = counter_update(state, taken)
        assert COUNTER_MIN <= state <= COUNTER_MAX


def test_counter_matches_clamped_integer_model(rng):
    state = COUNTER_INIT
    model = COUNTER_INIT
    for taken in counter_op_stream(rng, 500):
        state = counter_update(state, taken)
        model = max(COUNTER_MIN,
                    min(COUNTER_MAX, model + (1 if taken else -1)))
        assert state == model
        assert counter_predicts_taken(state) == (model >= 2)


def test_counter_second_chance(rng):
    """From any state, two same-direction updates fix the prediction;
    one opposite outcome never flips a strong counter."""
    for start in range(COUNTER_MIN, COUNTER_MAX + 1):
        for taken in (False, True):
            state = counter_update(counter_update(start, taken), taken)
            assert counter_predicts_taken(state) == taken
    assert counter_predicts_taken(counter_update(COUNTER_MAX, False))
    assert not counter_predicts_taken(counter_update(COUNTER_MIN, True))


def test_counter_class_mirrors_helpers(rng):
    counter = SaturatingCounter()
    state = COUNTER_INIT
    for taken in counter_op_stream(rng, 200):
        counter.update(taken)
        state = counter_update(state, taken)
        assert counter.state == state
        assert counter.taken == counter_predicts_taken(state)


# ----------------------------------------------------------------------
# Global history register
# ----------------------------------------------------------------------

def test_ghr_truncates_to_width(rng):
    for length in (1, 3, 7, 12):
        ghr = GlobalHistory(length)
        model = 0
        for taken in counter_op_stream(rng, 300):
            ghr.shift_in(taken)
            model = ((model << 1) | int(taken)) & ((1 << length) - 1)
            assert ghr.value == model
            assert ghr.value <= ghr.mask


def test_ghr_block_shift_equals_serial_shifts(rng):
    wide = GlobalHistory(11)
    serial = GlobalHistory(11)
    for _ in range(100):
        block = counter_op_stream(rng, rng.randint(0, 5))
        wide.shift_in_block(block)
        for taken in block:
            serial.shift_in(taken)
        assert wide.value == serial.value


def test_ghr_restore_masks_stray_bits(rng):
    ghr = GlobalHistory(6)
    for _ in range(50):
        raw = rng.getrandbits(16)
        ghr.restore(raw)
        assert ghr.value == (raw & ghr.mask)


def test_pack_block_outcomes_implies_same_update(rng):
    """The select table's compressed payload loses nothing the GHR uses
    for blocks that end at their first taken branch."""
    for _ in range(100):
        n_not_taken = rng.randint(0, 6)
        ends_taken = rng.random() < 0.5
        outcomes = [False] * n_not_taken + ([True] if ends_taken else [])
        direct = GlobalHistory(10)
        via_payload = GlobalHistory(10)
        direct.shift_in_block(outcomes)
        pack_block_outcomes(outcomes).apply(via_payload)
        assert direct.value == via_payload.value


# ----------------------------------------------------------------------
# Return address stack
# ----------------------------------------------------------------------

class _BoundedStackModel:
    """Reference model: a list that drops its oldest entry on overflow."""

    def __init__(self, size):
        self.size = size
        self.items = []

    def push(self, address):
        self.items.append(address)
        if len(self.items) > self.size:
            del self.items[0]

    def pop(self):
        return self.items.pop() if self.items else None

    def peek(self, depth):
        if depth >= len(self.items):
            return None
        return self.items[-1 - depth]


@pytest.mark.parametrize("size", [1, 2, 3, 8])
def test_ras_matches_bounded_stack_model(size, rng):
    ras = ReturnAddressStack(size)
    model = _BoundedStackModel(size)
    for op, value in ras_op_stream(rng, 600):
        if op == "push":
            ras.push(value)
            model.push(value)
        elif op == "pop":
            assert ras.pop() == model.pop()
        else:
            assert ras.peek(value) == model.peek(value)
        assert ras.depth == len(model.items)


def test_ras_overflow_wraparound(rng):
    """Pushing size+k entries keeps the newest `size`; the way back out
    then yields them newest-first and underflows to None."""
    size = 4
    ras = ReturnAddressStack(size)
    addresses = [rng.randint(1, 1 << 20) for _ in range(size + 3)]
    for address in addresses:
        ras.push(address)
    assert ras.depth == size
    for expected in reversed(addresses[-size:]):
        assert ras.pop() == expected
    assert ras.pop() is None
    assert ras.depth == 0


def test_ras_underflow_is_sticky(rng):
    ras = ReturnAddressStack(3)
    assert ras.pop() is None
    assert ras.peek(0) is None
    ras.push(0x40)
    assert ras.pop() == 0x40
    for _ in range(5):
        assert ras.pop() is None


def test_ras_second_block_bypass(rng):
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    ras.push(0x200)
    # First block calls: the second block sees the call's return point.
    assert ras.predict_for_second_block(True, False, 0x999) == 0x999
    # First block returns: the second block needs the next-older entry.
    assert ras.predict_for_second_block(False, True, 0) == 0x100
    # Plain fall-through: top of stack.
    assert ras.predict_for_second_block(False, False, 0) == 0x200
