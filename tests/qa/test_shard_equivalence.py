"""The shard-equivalence oracle: sharded QA sweeps match serial.

Positive coverage (real cases pass under every shard count) plus a
mutation canary: a scheduler that misplaces one result must be caught,
proving the oracle actually compares payloads rather than schedules.
"""

import pytest

from repro.qa.campaign import check_full
from repro.qa.cases import QACase
from repro.qa import sharding
from repro.qa.sharding import (
    SHARD_COUNTS,
    check_shard_equivalence,
    equivalence_cells,
)
from repro.runtime import sim


def _case(engine="dual", **kw):
    defaults = dict(budget=2000, config={"history_length": 8})
    defaults.update(kw)
    return QACase(engine=engine, **defaults)


class TestEquivalenceCells:
    def test_derives_multiple_distinct_cells(self):
        cells = equivalence_cells(_case())
        assert len(cells) >= 2
        lengths = [c.config["history_length"] for c in cells]
        assert len(set(lengths)) == len(lengths)
        assert 8 in lengths, "the case's own history length is covered"

    def test_cells_are_clamped_and_single_run(self):
        cells = equivalence_cells(_case(budget=50_000, repeats=3,
                                        track_recovery=False))
        for cell in cells:
            assert cell.budget <= sharding._EQUIV_BUDGET
            assert cell.repeats == 1
            assert not cell.track_recovery
            assert not cell.record_timeline


class TestOraclePasses:
    @pytest.mark.parametrize("engine", ["dual", "multi"])
    def test_real_cases_pass_every_shard_count(self, engine):
        case = _case(engine=engine)
        assert check_shard_equivalence(case) is None

    def test_wired_into_check_full(self):
        assert check_full(_case(budget=1000)) is None


class TestOracleDetects:
    def test_misplaced_result_is_a_finding(self, monkeypatch):
        # Mutation canary: a scheduler that nulls one cell's result
        # (lost delivery) must surface as a shard finding.
        real_simulate = sim.simulate

        def lossy_simulate(spec, **kw):
            result = real_simulate(spec, **kw)
            if spec.n_shards > 1:
                result.results[0] = None
            return result

        monkeypatch.setattr(sharding.sim, "simulate", lossy_simulate)
        reason = check_shard_equivalence(_case())
        assert reason is not None
        assert "no result" in reason

    def test_swapped_results_are_a_finding(self, monkeypatch):
        real_simulate = sim.simulate

        def swapping_simulate(spec, **kw):
            result = real_simulate(spec, **kw)
            if spec.n_shards > 1:
                result.results[0], result.results[1] = \
                    result.results[1], result.results[0]
            return result

        monkeypatch.setattr(sharding.sim, "simulate",
                            swapping_simulate)
        reason = check_shard_equivalence(_case())
        assert reason is not None

    def test_invariant_violations_are_findings(self, monkeypatch):
        monkeypatch.setattr(
            sharding.sim, "verify_invariants",
            lambda result: ["cell 0 duplicated: completed 2 times"])
        reason = check_shard_equivalence(_case())
        assert reason is not None
        assert "invariant" in reason

    def test_shard_counts_cover_one_and_many(self):
        assert 1 in SHARD_COUNTS
        assert any(n > 1 for n in SHARD_COUNTS)
