"""The greedy shrinker: minimization, termination, validity."""

from repro.qa.cases import QACase
from repro.qa.shrink import shrink_case


def _fat_case(**kw):
    base = dict(
        engine="dual", geometry_kind="align", block_width=16,
        family="correlated",
        params={"pairs": 5, "iterations": 30, "invert": 1, "stride": 4},
        budget=8000, repeats=3,
        config={"history_length": 12, "n_select_tables": 8,
                "near_block": True, "ras_size": 1,
                "track_not_taken_targets": False})
    base.update(kw)
    return QACase(**base)


def test_shrink_reaches_floor_when_anything_fails():
    """With an always-true predicate the shrinker must drive every
    dimension to its floor — the fully minimal case."""
    result = shrink_case(_fat_case(), lambda c: True)
    case = result.case
    assert case.budget == 100
    assert case.repeats == 1
    assert case.geometry_kind == "normal"
    assert case.block_width == 8
    assert case.config == {}
    assert case.params == {"pairs": 1, "iterations": 2, "invert": 0,
                           "stride": 0}


def test_shrink_preserves_the_failing_ingredient():
    """A predicate keyed on one config override keeps exactly that
    override and sheds the rest."""
    def fails(case):
        return case.config.get("track_not_taken_targets", True) is False

    result = shrink_case(_fat_case(), fails)
    assert result.case.config == {"track_not_taken_targets": False}
    assert result.case.budget == 100


def test_shrink_keeps_case_when_nothing_smaller_fails():
    fat = _fat_case()

    def only_original_fails(case):
        return case == fat

    result = shrink_case(fat, only_original_fails)
    assert result.case == fat
    assert result.steps == 0


def test_shrink_respects_probe_budget():
    result = shrink_case(_fat_case(), lambda c: True, max_probes=5)
    assert result.probes <= 5


def test_shrink_treats_predicate_crash_as_not_failing():
    def crashy(case):
        if case.budget < 8000:
            raise RuntimeError("different failure mode")
        return True

    result = shrink_case(_fat_case(), crashy)
    # Budget could never shrink, but other dimensions still did.
    assert result.case.budget == 8000
    assert result.case.repeats == 1


def test_shrink_only_yields_engine_valid_cases():
    """A predicate that records every probe must never see a case the
    engines would reject."""
    from repro.qa.cases import is_valid_case

    seen = []

    def fails(case):
        seen.append(case)
        return True

    shrink_case(_fat_case(engine="multi", n_blocks=4,
                          config={"history_length": 12}), fails)
    assert seen
    assert all(is_valid_case(case) for case in seen)
