"""The committed regression corpus and the campaign/CLI around it.

``tests/qa/corpus/*.json`` are shrunk findings from past campaigns;
each must replay clean through the full oracle on every build (the
regression stays fixed).  The same check runs in CI via
``python -m repro.qa replay tests/qa/corpus``.
"""

import json
from pathlib import Path

import pytest

from repro.qa.campaign import check_full, replay_corpus, run_campaign
from repro.qa.cases import CASE_FORMAT, CaseError, QACase
from repro.qa.corpus import (
    corpus_paths,
    iter_corpus,
    load_artifact,
    write_artifact,
)
from repro.qa.__main__ import main as qa_main

CORPUS_DIR = Path(__file__).parent / "corpus"


def test_corpus_is_not_empty():
    assert corpus_paths(CORPUS_DIR), \
        "the committed corpus must hold at least one artifact"


@pytest.mark.parametrize("path", corpus_paths(CORPUS_DIR),
                         ids=lambda p: p.name)
def test_corpus_artifact_replays_clean(path):
    case, reason = load_artifact(path)
    assert reason, f"{path.name} must record why it was committed"
    assert check_full(case) is None, \
        f"regression returned: {path.name} ({reason})"


def test_corpus_file_names_match_digests():
    for path, case, _reason in iter_corpus(CORPUS_DIR):
        assert path.name == f"qa-{case.digest()}.json"
        payload = json.loads(path.read_text())
        assert payload["format"] == CASE_FORMAT


def test_write_and_load_round_trip(tmp_path):
    case = QACase(engine="dual", family="near", budget=400)
    path = write_artifact(case, "unit-test artifact", tmp_path,
                          found={"seed": 1, "index": 2})
    loaded, reason = load_artifact(path)
    assert loaded == case
    assert reason == "unit-test artifact"
    # Same minimal case -> same file, not a duplicate.
    assert write_artifact(case, "again", tmp_path) == path


def test_load_artifact_rejects_garbage(tmp_path):
    bad = tmp_path / "qa-bad.json"
    bad.write_text("{not json")
    with pytest.raises(CaseError):
        load_artifact(bad)
    bad.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(CaseError):
        load_artifact(bad)


def test_missing_corpus_dir_replays_empty(tmp_path):
    assert replay_corpus(tmp_path / "nope") == []


def test_campaign_smoke(tmp_path, qa_seed):
    result = run_campaign(seed=qa_seed, budget_seconds=5, max_cases=4,
                          corpus_dir=tmp_path)
    assert result.passed, result.findings
    assert result.n_cases == 4
    assert not list(tmp_path.glob("*.json"))


def test_cli_campaign_and_replay_exit_codes(tmp_path, capsys):
    assert qa_main(["campaign", "--seed", "7", "--budget", "5",
                    "--max-cases", "2"]) == 0
    assert qa_main(["replay", str(CORPUS_DIR)]) == 0
    out = capsys.readouterr().out
    assert "campaign:" in out and "replay:" in out


def test_cli_replay_fails_on_bad_artifact(tmp_path, capsys):
    bad = tmp_path / "qa-broken.json"
    bad.write_text("{not json")
    assert qa_main(["replay", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_seed_from_environment(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_QA_SEED", "11")
    assert qa_main(["campaign", "--budget", "5", "--max-cases", "1"]) == 0
    assert "seed=11" in capsys.readouterr().out
    monkeypatch.setenv("REPRO_QA_SEED", "eleven")
    assert qa_main(["campaign", "--budget", "5", "--max-cases", "1"]) == 2


def test_cli_shrink_reports_fixed_case(tmp_path, capsys):
    case = QACase(engine="single", budget=400)
    path = write_artifact(case, "already fixed", tmp_path)
    assert qa_main(["shrink", str(path)]) == 1
    assert "no longer fails" in capsys.readouterr().out
