"""Metamorphic invariants: hold on healthy structures, catch tampering."""

import random

import pytest

from repro.core.penalties import PenaltyKind
from repro.qa.campaign import check_full
from repro.qa.cases import QACase
from repro.qa.generators import case_stream, counter_op_stream
from repro.qa.invariants import (
    accounting_conservation,
    blocked_b1_equivalence,
    check_case_invariants,
    conditional_stream,
    ghr_length_extension,
    select_table_dominance,
)
from repro.qa.oracle import run_mode


@pytest.fixture
def rng(qa_seed, request):
    return random.Random(f"{qa_seed}:{request.node.nodeid}")


def _branch_stream(rng, n=400):
    pcs = [rng.randrange(0, 1 << 12) for _ in range(12)]
    return [(rng.choice(pcs), rng.random() < 0.6) for _ in range(n)]


# ----------------------------------------------------------------------
# B=1 degeneracy
# ----------------------------------------------------------------------

def test_b1_equivalence_holds(rng):
    assert blocked_b1_equivalence(_branch_stream(rng),
                                  history_length=8) is None


def test_b1_equivalence_holds_on_real_workloads(qa_seed):
    case = QACase(engine="single", family="correlated",
                  params={"pairs": 2, "iterations": 20}, budget=2000)
    stream = conditional_stream(case)
    assert len(stream) > 50
    assert blocked_b1_equivalence(stream) is None


def test_b1_equivalence_detects_tampering(rng, monkeypatch):
    """An off-by-one in the scalar baseline's index must be reported."""
    from repro.predictors import scalar

    original = scalar.ScalarPHT._slot
    monkeypatch.setattr(
        scalar.ScalarPHT, "_slot",
        lambda self, ghr_value, pc: original(self, ghr_value, pc + 1))
    assert blocked_b1_equivalence(_branch_stream(rng)) is not None


# ----------------------------------------------------------------------
# Accounting conservation
# ----------------------------------------------------------------------

def _scalar_stats(case):
    run = run_mode(case, "scalar")
    assert not run.crashed, run.error
    return run.stats[0]


def test_accounting_holds_for_each_engine(qa_seed):
    for engine in ("single", "dual", "multi", "two_ahead"):
        case = QACase(engine=engine, family="synthetic",
                      params={"seed": qa_seed}, budget=2000)
        assert accounting_conservation(_scalar_stats(case), case) is None


def test_accounting_detects_corruption(qa_seed):
    case = QACase(engine="single", family="synthetic",
                  params={"seed": qa_seed}, budget=2000)
    stats = _scalar_stats(case)

    broken = _scalar_stats(case)
    broken.n_cond = broken.n_branches + 1
    assert accounting_conservation(broken, case) is not None

    broken = _scalar_stats(case)
    broken.event_cycles[PenaltyKind.COND] = 10 ** 9
    assert accounting_conservation(broken, case) is not None

    broken = _scalar_stats(case)
    broken.event_counts[PenaltyKind.COND] = stats.n_cond + 1
    assert accounting_conservation(broken, case) is not None


def test_accounting_honours_untracked_not_taken_cap(qa_seed):
    """track_not_taken_targets=False legitimately charges up to 7
    cycles per COND event; the cap must not misfire on it."""
    case = QACase(engine="dual", family="correlated",
                  params={"pairs": 4, "iterations": 20}, budget=2000,
                  config={"track_not_taken_targets": False})
    assert accounting_conservation(_scalar_stats(case), case) is None


# ----------------------------------------------------------------------
# GHR length extension
# ----------------------------------------------------------------------

def test_ghr_extension_holds(rng):
    blocks = []
    stream = counter_op_stream(rng, 300)
    while stream:
        n = rng.randint(1, 4)
        blocks.append(stream[:n])
        stream = stream[n:]
    assert ghr_length_extension(blocks, 4, 12) is None
    assert ghr_length_extension(blocks, 1, 1) is None


def test_ghr_extension_rejects_bad_lengths(rng):
    assert ghr_length_extension([[True]], 8, 4) is not None


# ----------------------------------------------------------------------
# Select-table dominance
# ----------------------------------------------------------------------

def test_select_dominance_holds_for_dual(qa_seed):
    case = QACase(engine="dual", family="near",
                  params={"branches": 6, "iterations": 15}, budget=2000,
                  config={"n_select_tables": 4})
    assert select_table_dominance(case) is None


def test_select_dominance_skips_other_engines(qa_seed):
    case = QACase(engine="single", budget=500)
    assert select_table_dominance(case) is None


# ----------------------------------------------------------------------
# Campaign-facing driver
# ----------------------------------------------------------------------

def test_check_case_invariants_clean_on_stream(qa_seed):
    stream = case_stream(qa_seed)
    for _ in range(4):
        _idx, case = stream.next()
        assert check_full(case) is None


def test_check_case_invariants_uses_supplied_stats(qa_seed):
    case = QACase(engine="single", family="loops",
                  params={"depth": 2}, budget=800)
    stats = _scalar_stats(case)
    stats.event_cycles[PenaltyKind.COND] = 10 ** 9
    stats.event_counts.setdefault(PenaltyKind.COND, 1)
    reason = check_case_invariants(case, stats=stats)
    assert reason is not None and reason.startswith("accounting:")
