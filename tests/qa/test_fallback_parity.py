"""Parity for the fast engine's documented scalar fallbacks.

``track_recovery`` (single engine) and ``record_timeline`` (dual
engine) route ``REPRO_ENGINE=fast`` through the scalar reference loop
by design.  That fallback must still be *byte-identical* to a genuine
scalar run — stats, timeline, recovery log, and full predictor state —
across randomized configurations, not just the fixed parity matrix.
"""

from dataclasses import replace

import random

import pytest

from repro.qa.generators import sample_case
from repro.qa.oracle import check_case


def _cases(qa_seed, engine, n, **flags):
    rng = random.Random(f"fallback:{qa_seed}:{engine}")
    cases = []
    while len(cases) < n:
        case = sample_case(rng, engine)
        case = replace(case, budget=min(case.budget, 1500), repeats=1,
                       **flags)
        cases.append(case)
    return cases


@pytest.mark.parametrize("index", range(4))
def test_track_recovery_fallback_parity(index, qa_seed):
    case = _cases(qa_seed, "single", 4, track_recovery=True)[index]
    verdict = check_case(case)
    assert verdict.passed, verdict.summary()
    # The fallback really ran the tracking path on both sides.
    assert verdict.scalar.recovery_log == verdict.fast.recovery_log


@pytest.mark.parametrize("index", range(4))
def test_record_timeline_fallback_parity(index, qa_seed):
    case = _cases(qa_seed, "dual", 4, record_timeline=True)[index]
    verdict = check_case(case)
    assert verdict.passed, verdict.summary()
    scalar = verdict.scalar.stats[0]
    fast = verdict.fast.stats[0]
    assert scalar.timeline is not None
    assert fast.timeline == scalar.timeline


def test_recovery_log_is_populated(qa_seed):
    """At least one sampled workload must actually produce BBR entries,
    or the parity assertions above would be vacuous."""
    populated = 0
    for case in _cases(qa_seed, "single", 4, track_recovery=True):
        verdict = check_case(case)
        assert verdict.passed, verdict.summary()
        if verdict.scalar.recovery_log:
            populated += 1
    assert populated > 0
