"""Differential oracle backend axis: corpus replay per kernel backend.

Every committed corpus artifact replays with the fast tier pinned to
each backend available in this interpreter; the verdict demands
bit-exact stats and full predictor state against the scalar reference
for every one of them.  This is the regression net the compiled and
numba tiers hang from.
"""

import pytest

from repro.core.backends import BACKEND_ENV, available_backends
from repro.qa.corpus import DEFAULT_CORPUS, iter_corpus
from repro.qa.oracle import backend_mode_env, check_case, run_mode

CORPUS = list(iter_corpus(DEFAULT_CORPUS))


def test_corpus_exists():
    assert CORPUS, "committed qa corpus is empty"


@pytest.mark.parametrize(
    "path,case,reason", CORPUS,
    ids=[p.name for p, _, _ in CORPUS])
def test_corpus_replays_clean_on_every_backend(path, case, reason):
    verdict = check_case(case, backends=[])
    assert verdict.passed, f"{path.name}: {verdict.reason}"
    assert set(verdict.backends) == set(available_backends())


def test_backend_axis_records_pinned_runs():
    _, case, _ = CORPUS[0]
    verdict = check_case(case, backends=["numpy"])
    assert list(verdict.backends) == ["numpy"]
    assert verdict.backends["numpy"].backend == "numpy"
    assert verdict.backends["numpy"].label() == "fast/numpy"


def test_classic_two_run_check_unchanged():
    _, case, _ = CORPUS[0]
    verdict = check_case(case)
    assert verdict.passed, verdict.reason
    assert verdict.backends == {}


def test_backend_env_is_restored(monkeypatch):
    import os
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    with backend_mode_env("compiled"):
        assert os.environ[BACKEND_ENV] == "compiled"
    assert BACKEND_ENV not in os.environ
    monkeypatch.setenv(BACKEND_ENV, "numpy")
    with backend_mode_env("compiled"):
        assert os.environ[BACKEND_ENV] == "compiled"
    assert os.environ[BACKEND_ENV] == "numpy"


def test_run_mode_pins_backend_for_the_run():
    _, case, _ = CORPUS[0]
    pinned = run_mode(case, "fast", backend="compiled")
    assert pinned.backend == "compiled"
    assert not pinned.crashed, pinned.error
