"""Golden-model tests: machine memory must match the Python mirrors
bit-for-bit after bounded runs (see golden_models.py)."""

import pytest

from repro.cpu import Machine
from repro.workloads import compress as compress_mod
from repro.workloads import m88ksim as m88k_mod
from repro.workloads import vortex as vortex_mod

from .golden_models import compress_golden, m88ksim_golden, vortex_golden


def run_bounded(module, outer, budget=3_000_000):
    machine = Machine(module.build(outer=outer))
    result = machine.run(max_instructions=budget)
    assert result.halted, "bounded workload must run to HALT"
    return machine


class TestCompressGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        outer = 2
        return run_bounded(compress_mod, outer), compress_golden(outer)

    def test_input_matches(self, pair):
        machine, golden = pair
        m = compress_mod
        assert machine.mem[m.INPUT:m.INPUT + m.INPUT_LEN] == \
            golden["input"]

    def test_dictionary_matches(self, pair):
        machine, golden = pair
        m = compress_mod
        assert machine.mem[m.KEYS:m.KEYS + m.TABLE_SIZE] == golden["keys"]
        assert machine.mem[m.VALUES:m.VALUES + m.TABLE_SIZE] == \
            golden["values"]

    def test_output_matches(self, pair):
        machine, golden = pair
        m = compress_mod
        assert machine.mem[m.OUTPUT:m.OUTPUT + m.OUTPUT_MASK + 1] == \
            golden["output"]


class TestM88ksimGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        outer = 8
        return run_bounded(m88k_mod, outer), m88ksim_golden(outer)

    def test_guest_code_matches(self, pair):
        machine, golden = pair
        m = m88k_mod
        assert machine.mem[m.GUEST_CODE:m.GUEST_CODE + m.GUEST_LEN] == \
            golden["code"]

    def test_guest_registers_match(self, pair):
        machine, golden = pair
        m = m88k_mod
        assert machine.mem[m.GUEST_REGS:m.GUEST_REGS + 32] == \
            golden["regs"]

    def test_guest_memory_matches(self, pair):
        machine, golden = pair
        m = m88k_mod
        assert machine.mem[m.GUEST_MEM:m.GUEST_MEM + m.GUEST_MEM_LEN] == \
            golden["mem"]


class TestVortexGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        outer = 2_000
        return run_bounded(vortex_mod, outer,
                           budget=10_000_000), vortex_golden(outer)

    def test_count_matches(self, pair):
        machine, golden = pair
        assert machine.mem[vortex_mod.COUNT_ADDR] == golden["count"]

    def test_index_matches(self, pair):
        machine, golden = pair
        count = golden["count"]
        assert machine.mem[vortex_mod.INDEX:vortex_mod.INDEX + count] == \
            golden["index"]

    def test_fields_match(self, pair):
        machine, golden = pair
        count = golden["count"]
        assert machine.mem[vortex_mod.FIELDS:vortex_mod.FIELDS + count] == \
            golden["fields"]


class TestGoGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import go as go_mod
        from .golden_models import go_golden
        outer = 120
        return run_bounded(go_mod, outer,
                           budget=10_000_000), go_golden(outer), go_mod

    def test_board_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.BOARD:m.BOARD + m.CELLS] == golden["board"]

    def test_visited_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.VISITED:m.VISITED + m.CELLS] == \
            golden["visited"]

    def test_scores_match(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.SCORES:m.SCORES + m.CELLS] == \
            golden["scores"]


class TestPerlGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import perl as perl_mod
        from .golden_models import perl_golden
        outer = 2
        return run_bounded(perl_mod, outer,
                           budget=10_000_000), perl_golden(outer), perl_mod

    def test_text_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.TEXT:m.TEXT + m.TEXT_LEN] == golden["text"]

    def test_hash_table_matches(self, pair):
        machine, golden, m = pair
        size = 1 << m.HASH_BITS
        assert machine.mem[m.HASH_KEYS:m.HASH_KEYS + size] == \
            golden["keys"]
        assert machine.mem[m.HASH_COUNTS:m.HASH_COUNTS + size] == \
            golden["counts"]

    def test_match_count_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.MATCHES] == golden["matches"]


class TestGccGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import gcc as gcc_mod
        from .golden_models import gcc_golden
        outer = 3
        return run_bounded(gcc_mod, outer,
                           budget=10_000_000), gcc_golden(outer), gcc_mod

    def test_ir_arrays_match(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.OP:m.OP + m.N_NODES] == golden["op"]
        assert machine.mem[m.ARG1:m.ARG1 + m.N_NODES] == golden["arg1"]
        assert machine.mem[m.ARG2:m.ARG2 + m.N_NODES] == golden["arg2"]
        assert machine.mem[m.FLAG:m.FLAG + m.N_NODES] == golden["flag"]

    def test_liveness_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.LIVE:m.LIVE + m.N_NODES] == golden["live"]

    def test_value_numbering_matches(self, pair):
        machine, golden, m = pair
        size = 1 << m.VN_BITS
        assert machine.mem[m.VN_KEYS:m.VN_KEYS + size] == \
            golden["vn_keys"]


class TestFppppGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import fpppp as f_mod
        from .golden_models import fpppp_golden
        outer = 2
        return run_bounded(f_mod, outer,
                           budget=10_000_000), fpppp_golden(outer), f_mod

    def test_params_match(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.PARAMS:m.PARAMS + m.N_PARAMS] == \
            golden["params"]

    def test_results_match(self, pair):
        """The 64-bit wrapping/shift chain must agree exactly — this is
        the hardest arithmetic-fidelity test in the suite."""
        machine, golden, m = pair
        assert machine.mem[m.RESULTS:m.RESULTS + m.N_PARAMS] == \
            golden["results"]


class TestSwimGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import swim as s_mod
        from .golden_models import swim_golden
        outer = 4
        return run_bounded(s_mod, outer,
                           budget=10_000_000), swim_golden(outer), s_mod

    def test_all_grids_match(self, pair):
        machine, golden, m = pair
        assert machine.mem[0:3 * m.N * m.N] == golden["all"]


class TestApsiGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import apsi as a_mod
        from .golden_models import apsi_golden
        outer = 4
        return run_bounded(a_mod, outer,
                           budget=10_000_000), apsi_golden(outer), a_mod

    def test_fields_match(self, pair):
        machine, golden, m = pair
        cells = m.COLS * m.LEVELS
        assert machine.mem[m.TEMP:m.TEMP + cells] == golden["temp"]
        assert machine.mem[m.HUM:m.HUM + cells] == golden["hum"]

    def test_saturation_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.SAT:m.SAT + m.LEVELS] == golden["sat"]


class TestIjpegGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import ijpeg as j_mod
        from .golden_models import ijpeg_golden
        outer = 2
        return run_bounded(j_mod, outer,
                           budget=10_000_000), ijpeg_golden(outer), j_mod

    def test_image_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.IMAGE:m.IMAGE + m.IMG_W * m.IMG_H] == \
            golden["image"]

    def test_working_block_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.BLOCK:m.BLOCK + 64] == golden["block"]

    def test_rle_output_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.OUTPUT:m.OUTPUT + m.OUTPUT_MASK + 1] == \
            golden["output"]
