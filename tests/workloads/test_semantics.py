"""Workload semantic checks: the analogs really compute what they claim.

These run a workload for a while and inspect its data memory, verifying
the algorithmic invariants of each analog (sorted index, filled hash
table, bounded fields...) — guarding against analogs degenerating into
branch-pattern generators with broken logic.
"""

import pytest

from repro.cpu import Machine
from repro.workloads import REGISTRY
from repro.workloads import vortex as vortex_mod
from repro.workloads import compress as compress_mod
from repro.workloads import perl as perl_mod
from repro.workloads import wave5 as wave5_mod
from repro.workloads import mgrid as mgrid_mod


def run_machine(name, budget):
    machine = Machine(REGISTRY.program(name))
    machine.run(max_instructions=budget)
    return machine


class TestVortexSemantics:
    def test_index_stays_sorted(self):
        """At *any* instant the index is non-decreasing with at most one
        adjacent equal pair (a budget cutoff can land mid-shift during an
        insert/delete, which transiently duplicates one neighbour)."""
        machine = run_machine("vortex", 150_000)
        count = machine.mem[vortex_mod.COUNT_ADDR]
        assert count > 10  # inserts actually happened
        index = machine.mem[vortex_mod.INDEX:vortex_mod.INDEX + count]
        adjacent_equal = 0
        for a, c in zip(index, index[1:]):
            assert a <= c, "ordering violated"
            if a == c:
                adjacent_equal += 1
        assert adjacent_equal <= 1

    def test_payloads_match_keys(self):
        machine = run_machine("vortex", 150_000)
        count = machine.mem[vortex_mod.COUNT_ADDR]
        mismatches = sum(
            machine.mem[vortex_mod.FIELDS + slot] !=
            machine.mem[vortex_mod.INDEX + slot] * 7
            for slot in range(count))
        # One slot may be mid-shift at the cutoff instant.
        assert mismatches <= 1


class TestCompressSemantics:
    def test_dictionary_keys_consistent(self):
        machine = run_machine("compress", 150_000)
        keys = machine.mem[compress_mod.KEYS:
                           compress_mod.KEYS + compress_mod.TABLE_SIZE]
        nonzero = [k for k in keys if k]
        assert nonzero, "dictionary never populated"
        # Keys encode (prefix << 4) | char + 1 with 4-bit symbols.
        for key in nonzero[:200]:
            assert (key - 1) & 0xF < compress_mod.N_SYMBOLS

    def test_output_codes_emitted(self):
        machine = run_machine("compress", 150_000)
        out = machine.mem[compress_mod.OUTPUT:
                          compress_mod.OUTPUT + 64]
        assert any(out)


class TestPerlSemantics:
    def test_word_counts_accumulate(self):
        machine = run_machine("perl", 200_000)
        counts = machine.mem[perl_mod.HASH_COUNTS:
                             perl_mod.HASH_COUNTS + (1 << perl_mod.HASH_BITS)]
        assert sum(counts) > 100  # many tokens interned

    def test_pattern_matches_found(self):
        machine = run_machine("perl", 200_000)
        # The motif contains the pattern (3,1,4) many times per period.
        assert machine.mem[perl_mod.MATCHES] > 10


class TestWave5Semantics:
    def test_particles_stay_in_domain(self):
        machine = run_machine("wave5", 150_000)
        positions = machine.mem[wave5_mod.POS:
                                wave5_mod.POS + wave5_mod.N_PARTICLES]
        assert all(0 <= x < wave5_mod.DOMAIN for x in positions)

    def test_velocities_clipped(self):
        machine = run_machine("wave5", 150_000)
        velocities = machine.mem[wave5_mod.VEL:
                                 wave5_mod.VEL + wave5_mod.N_PARTICLES]
        assert all(-64 <= v <= 64 for v in velocities)


class TestMgridSemantics:
    def test_smoothing_contracts_range(self):
        machine = run_machine("mgrid", 200_000)
        grid = machine.mem[mgrid_mod.GRID:mgrid_mod.GRID + mgrid_mod.SIZE]
        # Repeated averaging keeps values within the initial range and
        # pulls them together.
        assert all(0 <= v < 2048 for v in grid)
        interior = grid[64:-64]
        assert max(interior) - min(interior) < 2048
