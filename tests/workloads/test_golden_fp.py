"""Golden-model tests, part 2: the remaining analogs.

With these, **all 18 workloads** are verified bit-for-bit against Python
mirrors.
"""

import pytest

from repro.cpu import Machine

from . import golden_models_fp as gm


def run_bounded(module, outer, budget=12_000_000):
    machine = Machine(module.build(outer=outer))
    result = machine.run(max_instructions=budget)
    assert result.halted, "bounded workload must run to HALT"
    return machine


class TestTomcatvGolden:
    def test_grids_match(self):
        from repro.workloads import tomcatv as m
        machine = run_bounded(m, 3)
        golden = gm.tomcatv_golden(3)
        assert machine.mem[0:3 * m.N * m.N] == golden["all"]


class TestHydro2dGolden:
    def test_fields_match(self):
        from repro.workloads import hydro2d as m
        machine = run_bounded(m, 3)
        golden = gm.hydro2d_golden(3)
        assert machine.mem[0:2 * m.N * m.N] == golden["all"]


class TestMgridGolden:
    def test_hierarchy_matches(self):
        from repro.workloads import mgrid as m
        machine = run_bounded(m, 3)
        golden = gm.mgrid_golden(3)
        assert machine.mem[0:2 * m.SIZE] == golden["all"]


class TestSu2corGolden:
    def test_lattice_matches(self):
        from repro.workloads import su2cor as m
        machine = run_bounded(m, 3)
        golden = gm.su2cor_golden(3)
        assert machine.mem[0:m.CORR + 1] == golden["all"]


class TestTurb3dGolden:
    def test_signal_matches(self):
        from repro.workloads import turb3d as m
        machine = run_bounded(m, 3)
        golden = gm.turb3d_golden(3)
        assert machine.mem[0:2 * m.N] == golden["all"]


class TestWave5Golden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import wave5 as m
        return run_bounded(m, 4), gm.wave5_golden(4), m

    def test_particles_match(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.POS:m.POS + m.N_PARTICLES] == golden["pos"]
        assert machine.mem[m.VEL:m.VEL + m.N_PARTICLES] == golden["vel"]

    def test_grid_matches(self, pair):
        machine, golden, m = pair
        assert machine.mem[m.GRID:m.GRID + m.GRID_LEN] == golden["grid"]


class TestAppluGolden:
    def test_grid_matches(self):
        from repro.workloads import applu as m
        machine = run_bounded(m, 3)
        golden = gm.applu_golden(3)
        assert machine.mem[m.GRID:m.GRID + m.SIZE] == golden["grid"]


class TestLiGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.workloads import li as m
        return run_bounded(m, 5), gm.li_golden(5), m

    def test_code_and_heap_match(self, pair):
        machine, golden, m = pair
        code, _ = m._vm_programs()
        assert machine.mem[m.CODE:m.CODE + len(code)] == golden["code"]
        assert machine.mem[m.HEAP:m.HEAP + m.HEAP_LEN] == golden["heap"]

    def test_vm_stack_residue_matches(self, pair):
        """Even the dead operand/call-stack residue agrees — the VM's
        push/pop sequences are identical instruction for instruction."""
        machine, golden, m = pair
        assert machine.mem[m.VM_STACK:m.VM_STACK + 64] == golden["stack"]
        assert machine.mem[m.VM_CALLS:m.VM_CALLS + 32] == golden["calls"]
