"""Segmentation invariants hold on every real workload trace."""

import pytest

from repro.icache import CacheGeometry
from repro.isa import InstrKind
from repro.trace import EXIT_FALLTHROUGH, segment_blocks
from repro.workloads import SPEC95, load_trace

BUDGET = 30_000

GEOMETRIES = [
    CacheGeometry.normal(8),
    CacheGeometry.extended(8),
    CacheGeometry.self_aligned(8),
]


@pytest.mark.parametrize("name", SPEC95)
@pytest.mark.parametrize("geometry", GEOMETRIES,
                         ids=["normal", "extended", "self_aligned"])
def test_segmentation_invariants(name, geometry):
    trace = load_trace(name, BUDGET)
    blocks = segment_blocks(trace, geometry)
    # Conservation.
    assert blocks.instructions == trace.n_instructions
    # Chain property and geometry limits.
    for i in range(blocks.n_blocks):
        start = int(blocks.start[i])
        n = int(blocks.n_instr[i])
        assert 1 <= n <= geometry.block_limit(start)
        if i + 1 < blocks.n_blocks:
            assert blocks.exit_target[i] == blocks.start[i + 1]
    # Fall-through blocks fill the limit; final block is HALT.
    fall = blocks.exit_kind == EXIT_FALLTHROUGH
    for i in (j for j in range(blocks.n_blocks) if fall[j]):
        assert blocks.n_instr[i] == geometry.block_limit(
            int(blocks.start[i]))
    assert blocks.exit_kind[-1] == int(InstrKind.HALT)
