"""Code-generation helper tests (executed on the machine)."""

import pytest

from repro.cpu import Machine
from repro.isa import ProgramBuilder
from repro.workloads.codegen import (
    build_two_pass,
    clamp,
    fill_array,
    hash_combine,
    rand_into,
    seed_rng,
)


def run(body, data_size=1 << 12):
    b = ProgramBuilder(name="t", data_size=data_size)
    with b.function("main"):
        body(b)
    machine = Machine(b.build())
    result = machine.run(max_instructions=1_000_000)
    assert result.halted
    return machine


class TestRandInto:
    def test_power_of_two_modulus(self):
        machine = run(lambda b: (seed_rng(b, 7), rand_into(b, "r5", 16)))
        assert 0 <= machine.regs[5] < 16

    def test_general_modulus(self):
        machine = run(lambda b: (seed_rng(b, 7), rand_into(b, "r5", 10)))
        assert 0 <= machine.regs[5] < 10

    def test_deterministic(self):
        a = run(lambda b: (seed_rng(b, 99), rand_into(b, "r5", 1024)))
        c = run(lambda b: (seed_rng(b, 99), rand_into(b, "r5", 1024)))
        assert a.regs[5] == c.regs[5]

    def test_sequence_varies(self):
        def body(b):
            seed_rng(b, 5)
            rand_into(b, "r5", 1 << 20)
            rand_into(b, "r6", 1 << 20)
        machine = run(body)
        assert machine.regs[5] != machine.regs[6]

    def test_zero_seed_coerced_nonzero(self):
        machine = run(lambda b: (seed_rng(b, 0), rand_into(b, "r5", 256)))
        # LCG from state 1 still produces values; no stuck-at-zero.
        assert machine.regs[20] != 0


class TestFillArray:
    def test_fills_range_within_modulus(self):
        def body(b):
            seed_rng(b, 3)
            fill_array(b, base=100, length=32, counter="r5", value="r6",
                       modulus=8)
        machine = run(body)
        values = machine.mem[100:132]
        assert all(0 <= v < 8 for v in values)
        assert len(set(values)) > 1  # actually pseudo-random


class TestClamp:
    @pytest.mark.parametrize("value,expected", [
        (-50, -10), (-10, -10), (0, 0), (10, 10), (50, 10)])
    def test_clamps(self, value, expected):
        def body(b):
            b.asm.li("r5", value)
            clamp(b, "r5", -10, 10)
        assert run(body).regs[5] == expected


class TestHashCombine:
    def test_within_table(self):
        def body(b):
            b.asm.li("r5", 12345)
            b.asm.li("r6", 7)
            hash_combine(b, "r7", "r5", "r6", table_bits=10)
        machine = run(body)
        assert 0 <= machine.regs[7] < 1024

    def test_matches_reference(self):
        a, c = 12345, 7
        expected = ((a * 31 + c) ^ (a >> 7)) & 1023

        def body(b):
            b.asm.li("r5", a)
            b.asm.li("r6", c)
            hash_combine(b, "r7", "r5", "r6", table_bits=10)
        assert run(body).regs[7] == expected


class TestBuildTwoPass:
    def test_labels_become_constants(self):
        def make(b, labels):
            with b.function("main"):
                b.asm.li("r5", labels.get("target", 0))
            b.asm.label("target")
            b.asm.nop()
        program = build_two_pass(make, "t")
        machine = Machine(program)
        machine.run()
        assert machine.regs[5] == program.labels["target"]

    def test_layout_drift_detected(self):
        def make(b, labels):
            with b.function("main"):
                b.asm.nop()
                if labels:  # second pass emits extra code: drift
                    b.asm.nop()
        with pytest.raises(AssertionError):
            build_two_pass(make, "drift")
