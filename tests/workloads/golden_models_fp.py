"""Golden mirrors, part 2: the remaining fp analogs and the li VM.

Together with :mod:`golden_models` this covers all 18 workloads — every
analog's data memory is reproducible bit-for-bit in pure Python.
"""

from __future__ import annotations

from typing import Dict, List

from .golden_models import LCG, srl64, wrap64


def tomcatv_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import tomcatv as m

    rng = LCG(0x70C47)
    n = m.N
    data = [0] * (3 * n * n)
    for i in range(n * n):
        data[m.GRID_X + i] = rng.rand(1024)
        data[m.GRID_Y + i] = rng.rand(1024)

    for _ in range(outer):
        for i in range(1, n - 1):
            base = i * n
            for j in range(1, n - 1):
                c = data[m.GRID_X + base + j]
                acc = c
                acc = wrap64(acc + data[m.GRID_X + base + j - 1])
                acc = wrap64(acc + data[m.GRID_X + base + j + 1])
                acc = wrap64(acc + data[m.GRID_X + base - n + j])
                acc = wrap64(acc + data[m.GRID_X + base + n + j])
                acc = wrap64(acc + data[m.GRID_Y + base - n - 1 + j])
                acc = wrap64(acc + data[m.GRID_Y + base - n + 1 + j])
                acc = wrap64(acc + data[m.GRID_Y + base + n - 1 + j])
                acc = wrap64(acc + data[m.GRID_Y + base + n + 1 + j])
                acc = srl64(wrap64(acc * 7), 6)
                data[m.RHS + base + j] = acc
        for i in range(1, n - 1):
            base = i * n
            for j in range(1, n - 1):
                data[m.GRID_X + base + j] = data[m.RHS + base + j]
    return {"all": data}


def hydro2d_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import hydro2d as m

    rng = LCG(0x4D20)
    n = m.N
    data = [0] * (2 * n * n)
    c = 2048
    for i in range(n * n):
        c = wrap64(c + rng.rand(64) - 31)
        c = max(0, min(4095, c))
        data[m.RHO + i] = c
        data[m.FLUX + i] = c

    def flux(row, col, dr, dc):
        addr = row * n + col
        delta = dr * n + dc
        centre = data[m.RHO + addr]
        left = data[m.RHO + addr - delta]
        right = data[m.RHO + addr + delta]
        g = wrap64(right - centre)
        t1 = wrap64(centre - left)
        if wrap64(g * t1) < 0:
            g = 0
        if g != 0 and g > t1 and t1 > 0:
            g = t1
        t1 = srl64(wrap64(g * 1), 2)
        centre = wrap64(centre + t1)
        centre = max(0, min(4095, centre))
        data[m.FLUX + addr] = centre

    def commit():
        for i in range(n * n):
            data[m.RHO + i] = data[m.FLUX + i]

    for _ in range(outer):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                flux(i, j, 0, 1)
        commit()
        for j in range(1, n - 1):
            for i in range(1, n - 1):
                flux(i, j, 1, 0)
        commit()
    return {"all": data}


def mgrid_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import mgrid as m

    rng = LCG(0x36123)
    data = [rng.rand(2048) for _ in range(2 * m.SIZE)]

    def smooth(s):
        i = s
        while i < m.SIZE - s:
            c = data[m.GRID + i]
            a = data[m.GRID + i - s]
            a = wrap64(a + c)
            a = wrap64(a + c)
            a = wrap64(a + data[m.GRID + i + s])
            data[m.GRID + i] = srl64(a, 2)
            i += s

    def restrict(s):
        i = 0
        while i < m.SIZE - s:
            a = wrap64(data[m.GRID + i] + data[m.GRID + i + s])
            data[m.TEMP + i] = srl64(a, 1)
            i += 2 * s

    def prolong(s):
        i = 0
        while i < m.SIZE - 2 * s:
            a = data[m.TEMP + i]
            t = srl64(wrap64(a + data[m.TEMP + i + 2 * s]), 1)
            data[m.GRID + i] = a
            data[m.GRID + i + s] = t
            i += 2 * s

    for _ in range(outer):
        for s in m.LEVELS:
            smooth(s)
            restrict(s)
        for s in reversed(m.LEVELS):
            prolong(s)
            smooth(s)
    return {"all": data}


def su2cor_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import su2cor as m

    rng = LCG(0x52C0)
    data = [0] * (1 << 12)
    for i in range(2 * m.SITES):
        data[i] = rng.rand(1024)

    for _ in range(outer):
        for stride in m.STRIDES:
            total = 0
            for i in range(m.SITES - stride):
                a = data[m.FIELD_A + i]
                b2 = data[m.FIELD_A + i + stride]
                t0 = wrap64(wrap64(a * 3) + b2)
                t0 = srl64(t0, 2) & 1023
                if rng.rand(16) < 15:
                    data[m.FIELD_B + i] = t0
                total = wrap64(total + t0)
            data[m.CORR] = total
        for i in range(m.SITES):
            data[m.FIELD_A + i] = data[m.FIELD_B + i]
    return {"all": data[:m.CORR + 1]}


def turb3d_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import turb3d as m

    rng = LCG(0x7B3D)
    data = [0] * (2 * m.N)
    for i in range(m.N):
        data[m.RE + i] = rng.rand(1024)

    def bit_reverse():
        for i in range(m.N):
            rev = 0
            v = i
            for _ in range(m.LOG_N):
                rev = (rev << 1) | (v & 1)
                v >>= 1
            if i < rev:
                data[m.RE + i], data[m.RE + rev] = \
                    data[m.RE + rev], data[m.RE + i]

    def stage(half):
        step = 2 * half
        for i in range(0, m.N, step):
            lanes = range(half) if half <= 4 else [0] + \
                list(range(1, half))
            for k in lanes:
                x = data[m.RE + i + k]
                y = data[m.RE + i + k + half]
                data[m.RE + i + k] = wrap64(x + y)
                data[m.RE + i + k + half] = wrap64(x - y)

    def nonlinear():
        for i in range(m.N):
            a = data[m.RE + i]
            data[m.RE + i] = srl64(wrap64(a * a), 8) & 1023

    for _ in range(outer):
        bit_reverse()
        for s in range(m.LOG_N):
            stage(1 << s)
        nonlinear()
    return {"all": data}


def wave5_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import wave5 as m

    rng = LCG(0x3A5E)
    pos = [0] * m.N_PARTICLES
    vel = [0] * m.N_PARTICLES
    grid = [0] * m.GRID_LEN
    for i in range(m.N_PARTICLES):
        pos[i] = rng.rand(m.DOMAIN)
        vel[i] = wrap64(rng.rand(64) - 32)

    for _ in range(outer):
        # push
        for i in range(m.N_PARTICLES):
            x, v = pos[i], vel[i]
            cell = srl64(x, 4) & (m.GRID_LEN - 1)
            accel = wrap64(wrap64(grid[cell] - 128) * 1)
            v = wrap64(v + accel)
            if v > 64:
                v = 64
            if v < -64:
                v = -64
            x = wrap64(x + v)
            if x < 0:
                x = wrap64(0 - x)
                v = wrap64(0 - v)
            if x >= m.DOMAIN:
                x = wrap64(2 * m.DOMAIN - 1 - x)
                v = wrap64(0 - v)
            pos[i], vel[i] = x, v
        # deposit
        for i in range(m.GRID_LEN):
            grid[i] = 128
        for i in range(m.N_PARTICLES):
            cell = srl64(pos[i], 4) & (m.GRID_LEN - 1)
            grid[cell] = wrap64(grid[cell] + 1)
        # field_solve (in place, sequential)
        for i in range(1, m.GRID_LEN - 1):
            x = wrap64(grid[i - 1] + grid[i + 1])
            x = wrap64(x + grid[i])
            x = wrap64(x + grid[i])
            grid[i] = srl64(x, 2)
    return {"pos": pos, "vel": vel, "grid": grid}


def applu_golden(outer: int) -> Dict[str, List[int]]:
    from repro.workloads import applu as m

    rng = LCG(0xA991)
    grid = [rng.rand(1024) for _ in range(m.SIZE)]

    def kernel(i, j, k, sign):
        t0 = i * m.NY * m.NZ + j * m.NZ + k
        c = grid[t0]
        a = wrap64(c * 4)
        a = wrap64(a + grid[t0 + sign * m.NY * m.NZ])
        a = wrap64(a + grid[t0 + sign * m.NZ])
        a = wrap64(a + grid[t0 + sign])
        grid[t0] = srl64(wrap64(a * 5), 5)

    for _ in range(outer):
        for i in range(1, m.NX):
            for j in range(1, m.NY):
                for k in range(1, m.NZ):
                    kernel(i, j, k, -1)
        for i in range(m.NX - 2, -1, -1):
            for j in range(m.NY - 2, -1, -1):
                for k in range(m.NZ - 2, -1, -1):
                    kernel(i, j, k, +1)
    return {"grid": grid}


def li_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``li`` stack VM (memory-accurate stacks included)."""
    from repro.workloads import li as m

    code, entries = m._vm_programs()
    data = [0] * (1 << 14)
    for i, word in enumerate(code):
        data[m.CODE + i] = word
    value = 1
    for i in range(m.HEAP_LEN):
        value = (value * 48271 + 11) & 0x7FFFFFFF
        data[m.HEAP + i] = value % i if i > 1 else 0

    def vm_run(entry):
        pc = entry
        sp = m.VM_STACK
        cs = m.VM_CALLS
        while True:
            op = data[m.CODE + pc]
            pc += 1
            if op == m.OP_HALT:
                return
            if op == m.OP_PUSH:
                data[sp] = data[m.CODE + pc]
                pc += 1
                sp += 1
            elif op == m.OP_ADD:
                sp -= 1
                a = data[sp]
                sp -= 1
                b2 = data[sp]
                data[sp] = wrap64(a + b2)
                sp += 1
            elif op == m.OP_SUB:
                sp -= 1
                a = data[sp]
                sp -= 1
                b2 = data[sp]
                data[sp] = wrap64(b2 - a)
                sp += 1
            elif op == m.OP_DUP:
                data[sp] = data[sp - 1]
                sp += 1
            elif op == m.OP_JNZ:
                target = data[m.CODE + pc]
                pc += 1
                sp -= 1
                if data[sp] != 0:
                    pc = target
            elif op == m.OP_CALL:
                target = data[m.CODE + pc]
                pc += 1
                data[cs] = pc
                cs += 1
                pc = target
            elif op == m.OP_RET:
                cs -= 1
                pc = data[cs]
            elif op == m.OP_LOAD:
                a = data[sp - 1]
                a %= m.HEAP_LEN   # machine MOD truncates; operand >= 0
                data[sp - 1] = data[m.HEAP + a]
            elif op == m.OP_LT:
                sp -= 1
                a = data[sp]
                sp -= 1
                b2 = data[sp]
                data[sp] = 1 if b2 < a else 0
                sp += 1
            else:
                raise AssertionError(f"unknown VM op {op}")

    for _ in range(outer):
        for entry in entries:
            vm_run(entry)
    return {
        "code": data[m.CODE:m.CODE + len(code)],
        "heap": data[m.HEAP:m.HEAP + m.HEAP_LEN],
        "stack": data[m.VM_STACK:m.VM_STACK + 64],
        "calls": data[m.VM_CALLS:m.VM_CALLS + 32],
    }
