"""Every workload analog must run cleanly and show its intended character."""

import pytest

from repro.cpu import Machine
from repro.isa import InstrKind
from repro.trace import trace_stats
from repro.workloads import (
    REGISTRY,
    SPEC95,
    SPECFP95,
    SPECINT95,
    get_workload,
    load_trace,
)

BUDGET = 90_000


@pytest.fixture(scope="module", params=SPEC95)
def workload_trace(request):
    return request.param, load_trace(request.param, BUDGET)


class TestAllWorkloads:
    def test_runs_to_budget_without_faults(self, workload_trace):
        name, trace = workload_trace
        # Programs are sized to outlive any reasonable budget: the trace
        # must be budget-truncated, not naturally halted.
        assert trace.truncated, f"{name} halted before the budget"
        assert trace.n_instructions == BUDGET + 1

    def test_has_realistic_branch_density(self, workload_trace):
        name, trace = workload_trace
        stats = trace_stats(trace)
        # Between ~1% (fpppp's giant blocks) and 30%.
        assert 0.005 <= stats.branch_density <= 0.30, name

    def test_contains_calls_and_returns(self, workload_trace):
        name, trace = workload_trace
        stats = trace_stats(trace)
        assert stats.kind_counts.get("call", 0) > 0, name
        assert stats.kind_counts.get("return", 0) > 0, name

    def test_deterministic(self, workload_trace):
        name, _ = workload_trace
        program = REGISTRY.get(name).build()
        t1 = Machine(program).run(max_instructions=5_000).trace
        program2 = REGISTRY.get(name).build()
        t2 = Machine(program2).run(max_instructions=5_000).trace
        assert list(t1.pc) == list(t2.pc)
        assert list(t1.taken) == list(t2.taken)


class TestSuiteCharacter:
    """The int/fp split must reproduce the paper's contrast."""

    def _suite_misprediction(self, names):
        from repro.predictors import ScalarPHT, evaluate_scalar_direction

        mispredicts = conds = 0
        for name in names:
            result = evaluate_scalar_direction(
                load_trace(name, BUDGET),
                ScalarPHT(history_length=10, n_tables=8))
            mispredicts += result.mispredicts
            conds += result.n_cond
        return mispredicts / conds

    def test_fp_more_predictable_than_int(self):
        int_rate = self._suite_misprediction(SPECINT95)
        fp_rate = self._suite_misprediction(SPECFP95)
        assert fp_rate < int_rate, \
            f"fp {fp_rate:.3f} should beat int {int_rate:.3f}"
        # The paper's gap is roughly 3x (8.5% vs 2.7%).
        assert int_rate / fp_rate > 1.5

    def test_int_rate_in_plausible_band(self):
        rate = self._suite_misprediction(SPECINT95)
        assert 0.04 <= rate <= 0.20

    def test_fp_rate_in_plausible_band(self):
        rate = self._suite_misprediction(SPECFP95)
        assert 0.005 <= rate <= 0.08


class TestSignatureBehaviours:
    def test_fpppp_has_giant_basic_blocks(self):
        stats = trace_stats(load_trace("fpppp", BUDGET))
        assert stats.avg_basic_block > 40  # the suite's hallmark

    def test_li_is_indirect_heavy(self):
        stats = trace_stats(load_trace("li", BUDGET))
        indirect = stats.kind_counts.get("indirect", 0)
        assert indirect > 0.2 * stats.n_branches

    def test_go_recurses(self):
        stats = trace_stats(load_trace("go", BUDGET))
        assert stats.kind_counts.get("return", 0) > 100

    def test_mgrid_is_loop_dominated(self):
        trace = load_trace("mgrid", BUDGET)
        cond = trace.cond_mask
        taken_rate = trace.taken[cond].mean()
        assert taken_rate > 0.9  # back-edge dominated

    def test_descriptions_present(self):
        for name in SPEC95:
            assert len(get_workload(name).description) > 10
