"""Registry behaviour: suites, caching, lookup errors."""

import pytest

from repro.icache import CacheGeometry
from repro.workloads import (
    REGISTRY,
    SPEC95,
    SPECFP95,
    SPECINT95,
    get_workload,
    load_fetch_input,
    load_trace,
    workload_names,
)
from repro.workloads.base import WorkloadRegistry


class TestSuites:
    def test_eight_int_programs(self):
        assert len(SPECINT95) == 8
        assert set(SPECINT95) == {"gcc", "compress", "go", "ijpeg", "li",
                                  "m88ksim", "perl", "vortex"}

    def test_ten_fp_programs(self):
        assert len(SPECFP95) == 10
        assert set(SPECFP95) == {"applu", "apsi", "fpppp", "hydro2d",
                                 "mgrid", "su2cor", "swim", "tomcatv",
                                 "turb3d", "wave5"}

    def test_spec95_is_union(self):
        assert set(SPEC95) == set(SPECINT95) | set(SPECFP95)
        assert len(SPEC95) == 18

    def test_suite_filters(self):
        assert set(workload_names("int")) == set(SPECINT95)
        assert set(workload_names("fp")) == set(SPECFP95)
        assert set(workload_names("extra")) == {"kmp"}
        assert set(workload_names()) == set(SPEC95) | {"kmp"}


class TestLookup:
    def test_get_known(self):
        w = get_workload("compress")
        assert w.name == "compress"
        assert w.suite == "int"
        assert w.description

    def test_get_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="compress"):
            get_workload("nonexistent")


class TestCaching:
    def test_program_cached(self):
        assert REGISTRY.program("swim") is REGISTRY.program("swim")

    def test_trace_cached_per_budget(self):
        t1 = load_trace("swim", 2_000)
        t2 = load_trace("swim", 2_000)
        t3 = load_trace("swim", 3_000)
        assert t1 is t2
        assert t3 is not t1
        assert t3.n_instructions > t1.n_instructions

    def test_fetch_input_cached_per_geometry(self):
        geo = CacheGeometry.normal(8)
        fi1 = load_fetch_input("swim", geo, 2_000)
        fi2 = load_fetch_input("swim", geo, 2_000)
        fi3 = load_fetch_input("swim", CacheGeometry.self_aligned(8), 2_000)
        assert fi1 is fi2
        assert fi3 is not fi1


class TestRegistryClass:
    def test_duplicate_rejected(self):
        reg = WorkloadRegistry()
        reg.register("x", "int", "d")(lambda: None)
        with pytest.raises(ValueError):
            reg.register("x", "int", "d")(lambda: None)

    def test_bad_suite_rejected(self):
        reg = WorkloadRegistry()
        with pytest.raises(ValueError):
            reg.register("y", "weird", "d")

    def test_clear_caches(self):
        reg = WorkloadRegistry()
        from repro.isa import ProgramBuilder

        def build():
            b = ProgramBuilder(name="t")
            with b.function("main"):
                b.asm.nop()
            return b.build()

        reg.register("t", "int", "d")(build)
        first = reg.program("t")
        reg.clear_caches()
        assert reg.program("t") is not first


class TestDiskCache:
    def test_trace_persisted_and_reloaded(self, tmp_path, monkeypatch):
        import numpy as np
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        reg = WorkloadRegistry()
        from repro.isa import ProgramBuilder

        def build():
            b = ProgramBuilder(name="cached")
            with b.function("main"):
                with b.for_range("r3", 0, 50):
                    b.asm.addi("r4", "r4", 1)
            return b.build()

        reg.register("cached", "int", "d")(build)
        first = reg.trace("cached", 2_000)
        assert (tmp_path / "cached-2000.npz").exists()
        # A fresh registry (new process stand-in) loads from disk.
        reg2 = WorkloadRegistry()
        reg2.register("cached", "int", "d")(build)
        second = reg2.trace("cached", 2_000)
        assert second.n_instructions == first.n_instructions
        np.testing.assert_array_equal(second.pc, first.pc)

    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        reg = WorkloadRegistry()
        assert reg._disk_cache_path("x", 10) is None
