"""Exact Python mirrors of selected workload algorithms.

Each mirror replicates its workload's computation — same LCG, same order
of draws, same arithmetic (including 64-bit wrapping where the ISA wraps)
— so the machine's final data memory can be compared **bit-for-bit**
against the mirror after a bounded run.  A single divergence anywhere in
the interpreter, assembler, builder DSL or workload encoding shows up as
a memory mismatch.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import compress as compress_mod
from repro.workloads import m88ksim as m88k_mod
from repro.workloads import vortex as vortex_mod

MASK31 = (1 << 31) - 1
MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63


def wrap64(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


class LCG:
    """The builder's lcg_step / rand_into pair."""

    def __init__(self, seed: int) -> None:
        self.state = seed & MASK31 or 1

    def rand(self, modulus: int) -> int:
        self.state = (self.state * 1103515245 + 12345) & MASK31
        value = self.state >> 13
        if modulus <= 0:
            return value
        if modulus & (modulus - 1) == 0:
            return value & (modulus - 1)
        return value % modulus


def compress_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``compress`` analog after ``outer`` passes."""
    m = compress_mod
    rng = LCG(0xC0FFEE)
    data: List[int] = [0] * (1 << 15)

    # fill_input: skewed min-of-two-draws symbols.
    for i in range(m.INPUT_LEN):
        a = rng.rand(m.N_SYMBOLS)
        c = rng.rand(m.N_SYMBOLS)
        data[m.INPUT + i] = c if c < a else a

    for _ in range(outer):
        prefix = data[m.INPUT]
        next_code = m.N_SYMBOLS + 1
        out = 0
        for i in range(1, m.INPUT_LEN):
            char = data[m.INPUT + i]
            key = ((prefix << 4) | char) + 1
            h = ((prefix * 31 + char) ^ (prefix >> 7)) \
                & (m.TABLE_SIZE - 1)
            while True:
                stored = data[m.KEYS + h]
                if stored == 0 or stored == key:
                    break
                h = (h + 1) & (m.TABLE_SIZE - 1)
            if stored == key:
                prefix = data[m.VALUES + h]
            else:
                data[m.OUTPUT + (out & m.OUTPUT_MASK)] = prefix
                out += 1
                data[m.KEYS + h] = key
                data[m.VALUES + h] = next_code
                next_code += 1
                prefix = char
                if next_code >= m.MAX_CODE:
                    for slot in range(m.TABLE_SIZE):
                        data[m.KEYS + slot] = 0
                    next_code = m.N_SYMBOLS + 1
    return {
        "input": data[m.INPUT:m.INPUT + m.INPUT_LEN],
        "keys": data[m.KEYS:m.KEYS + m.TABLE_SIZE],
        "values": data[m.VALUES:m.VALUES + m.TABLE_SIZE],
        "output": data[m.OUTPUT:m.OUTPUT + m.OUTPUT_MASK + 1],
    }


def m88ksim_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``m88ksim`` analog after ``outer`` simulate passes."""
    m = m88k_mod
    rng = LCG(0x88100)
    regs = [rng.rand(64) for _ in range(32)]
    mem = [rng.rand(64) for _ in range(m.GUEST_MEM_LEN)]

    code = []
    for _ in range(m.GUEST_LEN):
        op = rng.rand(32)
        if op < 16:
            op &= 7
            if op >= 5:
                op &= 3
        elif op < 22:
            op = 5
        elif op < 27:
            op = 6
        elif op < 31:
            op = (op & 1) + 7
        else:
            op = 9
        inst = op * 4096
        inst += rng.rand(32) * 128
        inst += rng.rand(32) * 4
        inst += rng.rand(4)
        code.append(inst)

    for _ in range(outer):
        pc = 0
        while pc < m.GUEST_LEN:
            inst = code[pc]
            pc += 1
            op = inst >> 12
            rd = (inst >> 7) & 31
            rs = (inst >> 2) & 31
            if op == 0:
                regs[rd] = wrap64(regs[rs] + regs[rd])
            elif op == 1:
                regs[rd] = wrap64(regs[rd] - regs[rs])
            elif op == 2:
                regs[rd] = regs[rs] & regs[rd]
            elif op == 3:
                regs[rd] = regs[rs] | regs[rd]
            elif op == 4:
                regs[rd] = (regs[rs] & MASK64) >> ((inst & 3) & 63)
            elif op == 5:
                regs[rd] = mem[regs[rs] & (m.GUEST_MEM_LEN - 1)]
            elif op == 6:
                mem[regs[rs] & (m.GUEST_MEM_LEN - 1)] = regs[rd]
            elif op == 7:
                if regs[rs] == regs[rd]:
                    pc += 3
            elif op == 8:
                if regs[rs] != regs[rd]:
                    pc += 5
            # op 9: nop
    return {"code": code, "regs": regs, "mem": mem}


def vortex_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``vortex`` analog after ``outer`` transactions."""
    m = vortex_mod
    rng = LCG(0x50F7)
    index: List[int] = []
    fields: List[int] = []
    prev = 1

    def bsearch(key):
        lo, hi = 0, len(index)
        while lo < hi:
            mid = (lo + hi) >> 1
            if index[mid] == key:
                return mid, True
            if index[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, False

    for _ in range(outer):
        sel = rng.rand(4)
        if sel == 0:
            key = rng.rand(m.KEY_SPACE)
        else:
            key = (rng.rand(8) + prev) & (m.KEY_SPACE - 1)
        prev = key
        op = rng.rand(10)
        pos, found = bsearch(key)
        if op < 6:
            pass  # lookup (payload always consistent)
        elif op < 9:
            if not found and len(index) < m.CAPACITY:
                index.insert(pos, key)
                fields.insert(pos, key * 7)
        else:
            if found:
                del index[pos]
                del fields[pos]
    return {"count": len(index), "index": index, "fields": fields}


def go_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``go`` analog after ``outer`` moves."""
    import sys

    from repro.workloads import go as go_mod

    m = go_mod
    rng = LCG(0x60B0A8D)
    board = [rng.rand(0) % 3 for _ in range(m.CELLS)]
    visited = [0] * m.CELLS
    scores = [0] * m.CELLS

    sys.setrecursionlimit(4000)

    def flood(cell, colour):
        if cell < 0 or cell >= m.CELLS:
            return 0
        if visited[cell]:
            return 0
        if board[cell] != colour:
            return 0
        visited[cell] = 1
        count = 1
        count += flood(cell - m.SIZE, colour)
        count += flood(cell + m.SIZE, colour)
        if cell % m.SIZE != 0:
            count += flood(cell - 1, colour)
        if cell % m.SIZE != m.SIZE - 1:
            count += flood(cell + 1, colour)
        return count

    def score_board():
        for idx in range(m.CELLS):
            if board[idx] != 0:
                continue
            move = 0
            row, col = idx // m.SIZE, idx % m.SIZE
            if row > 0:
                move += board[idx - m.SIZE]
            if row < m.SIZE - 1:
                move += board[idx + m.SIZE]
            if col > 0:
                move += board[idx - 1]
            if col < m.SIZE - 1:
                move += board[idx + 1]
            scores[idx] = move

    for move_index in range(outer):
        cell = rng.rand(512) % m.CELLS
        colour = (move_index & 1) + 1
        board[cell] = colour
        for i in range(m.CELLS):
            visited[i] = 0
        count = flood(cell, colour)
        if count > 8:
            for idx in range(m.CELLS):
                if visited[idx]:
                    board[idx] = 0
        if count > 4:
            score_board()
    return {"board": board, "visited": visited, "scores": scores}


def perl_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``perl`` analog after ``outer`` passes."""
    from repro.workloads import perl as perl_mod

    m = perl_mod
    rng = LCG(0x9E51)
    text = [0] * m.TEXT_LEN
    keys = [0] * (1 << m.HASH_BITS)
    counts = [0] * (1 << m.HASH_BITS)

    # gen_text with ~6% mutation.
    for i in range(m.TEXT_LEN):
        c = m.MOTIF_SYMBOLS[i % len(m.MOTIF_SYMBOLS)]
        if rng.rand(16) == 0:
            c = rng.rand(32)
            if c >= 26:
                c = 26
        text[i] = c

    matches = 0
    for _ in range(outer):
        # tokenise
        i = 0
        while i < m.TEXT_LEN:
            while i < m.TEXT_LEN and text[i] >= 26:
                i += 1
            if i >= m.TEXT_LEN:
                break
            token_hash = 0
            while i < m.TEXT_LEN and text[i] < 26:
                token_hash = wrap64(token_hash * 31 + text[i])
                i += 1
            key = wrap64(token_hash + 1)
            h = token_hash & ((1 << m.HASH_BITS) - 1)
            while keys[h] not in (0, key):
                h = (h + 1) & ((1 << m.HASH_BITS) - 1)
            keys[h] = key
            counts[h] += 1
        # match_pattern
        matches = 0
        pattern = (3, 1, 4)
        for i in range(m.TEXT_LEN - m.PATTERN_LEN):
            if all(text[i + k] == pattern[k]
                   for k in range(m.PATTERN_LEN)):
                matches += 1
    return {"text": text, "keys": keys, "counts": counts,
            "matches": matches}


def srl64(value: int, amount: int) -> int:
    """The machine's logical right shift (two's-complement bit pattern)."""
    return (value & MASK64) >> (amount & 63)


def gcc_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``gcc`` analog after ``outer`` pass pipelines."""
    from repro.workloads import gcc as gcc_mod

    m = gcc_mod
    rng = LCG(0x6CC)
    n = m.N_NODES
    op = [0] * n
    arg1 = [0] * n
    arg2 = [0] * n
    flag = [0] * n
    live = [0] * n
    vn_keys = [0] * (1 << m.VN_BITS)
    vn_mask = (1 << m.VN_BITS) - 1

    for _ in range(outer):
        # gen_ir
        for i in range(n):
            o = rng.rand(16)
            if o >= m.N_IROPS:
                o &= 7
            op[i] = o
            arg1[i] = rng.rand(n)
            arg2[i] = rng.rand(n)
            flag[i] = 1 if rng.rand(4) < 1 else 0
            live[i] = 0
        # fold_pass
        for i in range(n):
            o, a1, a2 = op[i], arg1[i], arg2[i]
            if o == 1:
                if flag[a1] and flag[a2]:
                    op[i] = 0
                    flag[i] = 1
            else:
                if o == 3 and flag[a2]:
                    op[i] = 1
                if o == 6 and a1 == a2:
                    op[i] = 0
                    flag[i] = 1
        # value_number
        for slot in range(len(vn_keys)):
            vn_keys[slot] = 0
        for i in range(n):
            o, a1, a2 = op[i], arg1[i], arg2[i]
            h = (((a1 * 31 + a2) ^ (a1 >> 7)) & vn_mask)
            h = (h + o) & vn_mask
            key = o * n + a1 + 1
            while vn_keys[h] not in (0, key):
                h = (h + 1) & vn_mask
            vn_keys[h] = key
        # dce_pass
        for i in range(n - 1, -1, -1):
            is_live = 1 if op[i] >= 5 else 0
            if live[i]:
                is_live = 1
            if is_live:
                live[arg1[i]] = 1
                live[arg2[i]] = 1
    return {"op": op, "arg1": arg1, "arg2": arg2, "flag": flag,
            "live": live, "vn_keys": vn_keys}


def fpppp_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``fpppp`` analog after ``outer`` sweeps."""
    from repro.workloads import fpppp as f_mod

    m = f_mod
    rng = LCG(0xF999)
    params = [rng.rand(1 << 16) for _ in range(m.N_PARAMS)]
    results = [0] * m.N_PARAMS

    for _ in range(outer):
        for i in range(m.N_SHELLS):
            for j in range(m.N_SHELLS):
                base = (i + j) & (m.N_PARAMS - 8 - 1)   # bitwise, as andi
                acc = [params[base + k] for k in range(8)]
                for rnd in range(25):
                    ai = rnd % 8
                    ci = (rnd + 3) % 8
                    di = (rnd + 5) % 8
                    acc[ai] = wrap64(acc[ai] * acc[ci])
                    acc[ai] = srl64(acc[ai], 7)
                    acc[ai] = wrap64(acc[ai] + acc[di])
                    acc[ci] = acc[ci] ^ acc[ai]
                    acc[di] = wrap64(acc[di] * 3)
                    acc[di] = srl64(acc[di], 1)
                    acc[di] = wrap64(acc[di] - acc[ci])
                    acc[ai] = wrap64(acc[ai] + acc[di])
                total = acc[0]
                for lane in acc[1:]:
                    total = wrap64(total + lane)
                total &= (1 << 20) - 1
                results[(i + j) & (m.N_PARAMS - 1)] = total
    return {"params": params, "results": results}


def swim_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``swim`` analog after ``outer`` timesteps."""
    from repro.workloads import swim as s_mod

    m = s_mod
    rng = LCG(0x5717)
    data = [rng.rand(512) for _ in range(3 * m.N * m.N)]

    def sweep(src_a, src_b, dst, weight):
        for i in range(m.N):
            ip = i + 1 if i + 1 < m.N else 0
            for j in range(m.N):
                jp = j + 1 if j + 1 < m.N else 0
                a = data[src_a + i * m.N + j]
                a = wrap64(a + data[src_a + ip * m.N + j])
                a = wrap64(a + data[src_a + i * m.N + jp])
                a = wrap64(a - data[src_b + i * m.N + j])
                a = wrap64(a + data[src_b + ip * m.N + jp])
                a = wrap64(a * weight)
                a = srl64(a, 3)
                data[dst + i * m.N + j] = a

    for _ in range(outer):
        sweep(m.P, m.V, m.U, 3)
        sweep(m.U, m.P, m.V, 5)
        sweep(m.V, m.U, m.P, 7)
    return {"all": data}


def apsi_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``apsi`` analog after ``outer`` sweeps."""
    from repro.workloads import apsi as a_mod

    m = a_mod
    rng = LCG(0xA951)
    cells = m.COLS * m.LEVELS
    temp = [0] * cells
    hum = [0] * cells
    for i in range(cells):
        temp[i] = rng.rand(512) + 200
        hum[i] = rng.rand(1024)
    sat = [980 - lev * 6 for lev in range(m.LEVELS)]

    for _ in range(outer):
        for col in range(m.COLS):
            base = col * m.LEVELS
            # column_up
            for lev in range(1, m.LEVELS):
                t = wrap64(temp[base + lev - 1] - 6 + temp[base + lev])
                temp[base + lev] = srl64(t, 1)
                h = hum[base + lev]
                if h > sat[lev]:
                    latent = srl64(wrap64(h - sat[lev]), 1)
                    h = wrap64(h - latent)
                    hum[base + lev] = h
                    temp[base + lev] = wrap64(temp[base + lev] + latent)
            # column_down
            for lev in range(m.LEVELS - 2, -1, -1):
                h = wrap64(hum[base + lev] + hum[base + lev + 1])
                h = srl64(h, 1)
                h = max(0, min(2047, h))
                hum[base + lev] = h
    return {"temp": temp, "hum": hum, "sat": sat}


def ijpeg_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``ijpeg`` analog after ``outer`` image passes."""
    from repro.workloads import ijpeg as j_mod

    m = j_mod
    rng = LCG(0x1F3C)
    image = [0] * (m.IMG_W * m.IMG_H)
    a = 128
    for i in range(len(image)):
        a = wrap64(a + rng.rand(32) - 15)
        a = max(0, min(255, a))
        image[i] = a
    block = [0] * 64
    output = [0] * (m.OUTPUT_MASK + 1)
    out = 0

    def butterfly(stride, base_step):
        for lane in range(8):
            base = lane * base_step
            for k in range(4):
                x = block[base + k * stride]
                y = block[base + (7 - k) * stride]
                s = srl64(wrap64(x + y), 1)
                d = srl64(wrap64(wrap64(x - y) * 3), 2)
                block[base + k * stride] = s
                block[base + (7 - k) * stride] = d

    for _ in range(outer):
        for by in range(0, m.IMG_H, 8):
            for bx in range(0, m.IMG_W, 8):
                for r in range(8):
                    for col in range(8):
                        block[r * 8 + col] = \
                            image[(by + r) * m.IMG_W + bx + col]
                butterfly(stride=1, base_step=8)
                butterfly(stride=8, base_step=1)
                for i in range(64):
                    v = srl64(block[i], 3)
                    v = wrap64(v - 8)
                    v = max(-16, min(15, v))
                    if -3 < v < 3:
                        v = 0
                    block[i] = v
                run = 0
                for index in m.ZIGZAG:
                    v = block[index]
                    if v == 0:
                        run += 1
                    else:
                        output[out & m.OUTPUT_MASK] = run
                        out += 1
                        output[out & m.OUTPUT_MASK] = v
                        out += 1
                        run = 0
    return {"image": image, "block": block, "output": output}


def kmp_golden(outer: int) -> Dict[str, List[int]]:
    """Mirror of the ``kmp`` analog after ``outer`` search passes."""
    from repro.workloads import kmp as m

    rng = LCG(m.SEED)

    def skewed() -> int:
        a = rng.rand(m.N_SYMBOLS)
        c = rng.rand(m.N_SYMBOLS)
        return c if c < a else a

    counters = {"mp_comp": 0, "mp_match": 0,
                "kmp_comp": 0, "kmp_match": 0, "passes": 0}
    pattern: List[int] = []
    text: List[int] = []
    fail: List[int] = []
    strong: List[int] = []
    for _ in range(outer):
        pattern = [skewed() for _ in range(m.PAT_LEN)]
        text = [skewed() for _ in range(m.TEXT_LEN)]
        # Weak borders (Morris-Pratt failure function).
        fail = [0] * (m.PAT_LEN + 1)
        k = 0
        for j in range(1, m.PAT_LEN):
            while k > 0 and pattern[j] != pattern[k]:
                k = fail[k]
            if pattern[j] == pattern[k]:
                k += 1
            fail[j + 1] = k
        # Strong failure function (KMP refinement).
        strong = [0] * (m.PAT_LEN + 1)
        for j in range(1, m.PAT_LEN):
            f = fail[j]
            strong[j] = strong[f] if pattern[j] == pattern[f] else f
        strong[m.PAT_LEN] = fail[m.PAT_LEN]

        def search(table: List[int]) -> "tuple[int, int]":
            comparisons = matches = 0
            j = 0
            for i in range(m.TEXT_LEN):
                t = text[i]
                while True:
                    comparisons += 1
                    if t == pattern[j]:
                        j += 1
                        if j == m.PAT_LEN:
                            matches += 1
                            j = table[m.PAT_LEN]
                        break
                    if j == 0:
                        break
                    j = table[j]
            return comparisons, matches

        c, hits = search(fail)
        counters["mp_comp"] += c
        counters["mp_match"] += hits
        c, hits = search(strong)
        counters["kmp_comp"] += c
        counters["kmp_match"] += hits
        counters["passes"] += 1
    return {"pattern": pattern, "text": text, "fail_mp": fail,
            "fail_kmp": strong,
            "counters": [counters["mp_comp"], counters["mp_match"],
                         counters["kmp_comp"], counters["kmp_match"],
                         counters["passes"]]}
