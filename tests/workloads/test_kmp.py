"""The ``kmp`` verification workload: golden model and analytic bounds.

The workload exists *because* its dynamic behaviour is provable: the
Morris-Pratt automaton's amortized comparison bound, the strong failure
function's dominance, and the match-count agreement hold for every
pattern and text.  The golden test pins the implementation bit-for-bit;
the bound tests pin the mathematics.
"""

import pytest

from repro.cpu import Machine
from repro.qa.invariants import kmp_search_bounds
from repro.qa.oracle import tracer_mode_env
from repro.workloads import kmp as kmp_mod
from repro.workloads.registry import workload_names

from .golden_models import kmp_golden
from .test_golden import run_bounded

OUTER = 3


class TestKmpGolden:
    @pytest.fixture(scope="class")
    def pair(self):
        return run_bounded(kmp_mod, OUTER), kmp_golden(OUTER)

    def test_pattern_and_text_match(self, pair):
        machine, golden = pair
        m = kmp_mod
        assert machine.mem[m.PATTERN:m.PATTERN + m.PAT_LEN] == \
            golden["pattern"]
        assert machine.mem[m.TEXT:m.TEXT + m.TEXT_LEN] == golden["text"]

    def test_failure_tables_match(self, pair):
        machine, golden = pair
        m = kmp_mod
        assert machine.mem[m.FAIL_MP:m.FAIL_MP + m.PAT_LEN + 1] == \
            golden["fail_mp"]
        assert machine.mem[m.FAIL_KMP:m.FAIL_KMP + m.PAT_LEN + 1] == \
            golden["fail_kmp"]

    def test_counters_match(self, pair):
        machine, golden = pair
        m = kmp_mod
        assert machine.mem[m.MP_COMP:m.PASSES + 1] == golden["counters"]

    def test_strong_table_dominates_weak(self, pair):
        _machine, golden = pair
        # The strong function always jumps at least as far back.
        for weak, hard in zip(golden["fail_mp"], golden["fail_kmp"]):
            assert hard <= weak


class TestAnalyticBounds:
    def test_registered_in_extra_suite(self):
        assert "kmp" in workload_names("extra")

    @pytest.mark.parametrize("mode", ["scalar", "fast"])
    def test_bounds_hold_under_both_tracers(self, mode):
        with tracer_mode_env(mode):
            assert kmp_search_bounds(outer=2, budget=2_000_000) is None

    def test_unbounded_build_truncates_cleanly(self):
        machine = Machine(kmp_mod.build())
        result = machine.run(max_instructions=50_000)
        assert not result.halted
        assert result.trace.truncated
