"""Cost model tests — the paper's Section 5 worked example."""

import pytest

from repro.cost import (
    CostConfig,
    bbr_bits,
    bit_bits,
    dual_block_double_select_cost,
    dual_block_single_select_cost,
    multi_block_cost,
    nls_bits,
    pht_bits,
    select_table_bits,
    single_block_cost,
)

KBIT = 1024
PAPER = CostConfig()  # defaults are the paper's example


class TestComponentFormulas:
    def test_pht_is_16_kbits(self):
        assert pht_bits(PAPER) == 16 * KBIT

    def test_st_is_8_kbits(self):
        assert select_table_bits(PAPER) == 8 * KBIT

    def test_nls_is_20_kbits(self):
        assert nls_bits(PAPER) == 20 * KBIT

    def test_bit_is_16_kbits(self):
        assert bit_bits(PAPER) == 16 * KBIT

    def test_bbr_is_about_a_third_kbit(self):
        assert 0.25 * KBIT <= bbr_bits(PAPER) <= 0.45 * KBIT

    def test_dual_nls_doubles(self):
        assert nls_bits(PAPER, dual=True) == 40 * KBIT

    def test_dual_st_doubles(self):
        assert select_table_bits(PAPER, dual=True) == 16 * KBIT


class TestSectionFiveTotals:
    def test_single_block_about_52_kbits(self):
        total = single_block_cost().total_kbits
        assert total == pytest.approx(52, abs=1.0)

    def test_dual_single_select_about_80_kbits(self):
        total = dual_block_single_select_cost().total_kbits
        assert total == pytest.approx(80, abs=1.0)

    def test_dual_double_select_about_72_kbits(self):
        total = dual_block_double_select_cost().total_kbits
        assert total == pytest.approx(72, abs=1.0)

    def test_double_select_cheaper_than_single(self):
        # The whole point of double selection: BIT storage removed.
        assert dual_block_double_select_cost().total_bits < \
            dual_block_single_select_cost().total_bits

    def test_breakdown_components_named(self):
        single = single_block_cost()
        assert set(single.components) == {"PHT", "NLS", "BIT", "BBR"}
        double = dual_block_double_select_cost()
        assert "BIT" not in double.components


class TestScaling:
    def test_pht_cost_linear_in_block_width(self):
        """The paper's scalability claim: cost is linear in B."""
        costs = [pht_bits(CostConfig(block_width=b)) for b in (4, 8, 16)]
        assert costs[1] == 2 * costs[0]
        assert costs[2] == 2 * costs[1]

    def test_multi_block_grows_linearly(self):
        """Section 5: per extra block, one more ST and target array."""
        totals = [multi_block_cost(n).total_bits for n in (1, 2, 3, 4)]
        increments = [b - a for a, b in zip(totals, totals[1:])]
        assert increments[0] == increments[1] == increments[2]

    def test_multi_block_validation(self):
        with pytest.raises(ValueError):
            multi_block_cost(0)

    def test_history_doubles_tables(self):
        small = CostConfig(history_length=10)
        big = CostConfig(history_length=11)
        assert pht_bits(big) == 2 * pht_bits(small)
        assert select_table_bits(big) == 2 * select_table_bits(small)

    def test_str_renders_totals(self):
        text = str(single_block_cost())
        assert "total" in text
        assert "PHT" in text
