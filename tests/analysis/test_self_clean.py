"""The project tree must be clean under its own lint configuration.

This is the self-hosting check: every rule reprolint enforces is
satisfied by the real tree (the violations that existed when the tool
was written were fixed, not exempted).  If this test fails, either fix
the reported code or — for a deliberate exception — add a justified
``# reprolint: disable=RULE`` pragma or config entry in the same
change.
"""

from repro.analysis.config import from_pyproject
from repro.analysis.core import run_analysis

from .conftest import REPO_ROOT


def _project_config():
    return from_pyproject(REPO_ROOT / "pyproject.toml")


def test_src_tree_is_clean():
    config = _project_config()
    result = run_analysis([REPO_ROOT / "src" / "repro"], config)
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings)
    assert result.n_files > 90  # the whole package was walked


def test_tests_tree_is_clean_under_relaxed_rules():
    # tests/ gets the determinism family and REP401 relaxed via the
    # per-path-ignores table (pyproject); everything else still holds.
    config = _project_config()
    result = run_analysis([REPO_ROOT / "tests"], config)
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings)


def test_fixture_corpus_is_excluded_by_project_config():
    config = _project_config()
    result = run_analysis([REPO_ROOT / "tests" / "analysis"], config)
    assert not any("fixtures/" in f.path for f in result.findings)
