"""Parity-contract checker (REP301/REP302), incl. the live regression.

The last test is the one that matters: it proves that adding a state
field to the *real* scalar engine without teaching the *real* fast
engine about it fails lint — the exact drift the rule exists to catch.
"""

import shutil

from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis

from .conftest import REPO_ROOT

FIXTURE_CORE = REPO_ROOT / "tests/analysis/fixtures/repro/core"
REAL_CORE = REPO_ROOT / "src/repro/core"


def test_scalar_only_field_reported(findings_at):
    findings = findings_at("single.py")
    assert [f.rule for f in findings] == ["REP301"]
    assert "shadow_counters" in findings[0].message
    assert "SingleBlockEngine" in findings[0].message


def test_fast_only_access_reported(findings_at):
    findings = findings_at("fast.py")
    assert [f.rule for f in findings] == ["REP302"]
    assert "select_like_missing" in findings[0].message


def test_private_fields_ignored(findings_at):
    # single.py assigns self._scratch; it must not be reported.
    assert all("_scratch" not in f.message
               for f in findings_at("single.py"))


def test_exempt_table_silences_rep301():
    config = LintConfig(project_root=REPO_ROOT,
                        parity_exempt=("recovery_log",
                                       "shadow_counters"))
    result = run_analysis([FIXTURE_CORE / "single.py",
                           FIXTURE_CORE / "fast.py"], config)
    assert not any(f.rule == "REP301" for f in result.findings)


def test_silent_when_one_side_missing():
    config = LintConfig(project_root=REPO_ROOT)
    result = run_analysis([FIXTURE_CORE / "single.py"], config)
    assert not any(f.rule.startswith("REP3") for f in result.findings)


def _engine_modules():
    names = ["single.py", "dual.py", "multi.py", "two_ahead.py",
             "fast.py"]
    return [REAL_CORE / name for name in names]


def test_real_engine_modules_satisfy_contract():
    config = LintConfig(project_root=REPO_ROOT)
    result = run_analysis(_engine_modules(), config)
    rep3 = [f for f in result.findings if f.rule.startswith("REP3")]
    assert rep3 == []


def test_new_scalar_field_breaks_lint(tmp_path):
    """Acceptance regression: a state field added to the real scalar
    engine but not to fast.py must produce REP301."""
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    for module in _engine_modules():
        shutil.copy(module, core / module.name)

    anchor = "        self.recovery_log: List[RecoveryEntry] = []"
    source = (core / "single.py").read_text()
    assert anchor in source
    (core / "single.py").write_text(source.replace(
        anchor, anchor + "\n        self.shadow_table = []", 1))

    config = LintConfig(project_root=tmp_path)
    result = run_analysis([tmp_path], config)
    rep301 = [f for f in result.findings if f.rule == "REP301"]
    assert len(rep301) == 1
    assert "shadow_table" in rep301[0].message
    assert rep301[0].path.endswith("repro/core/single.py")
