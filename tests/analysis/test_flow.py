"""Unit tests for the dataflow tier (repro.analysis.flow).

Covers CFG shape (branch joins, loop back edges, try/except may-raise
edges), reaching definitions over that graph, def-use chains, and the
call-context summaries (is_async / may_block / acquires_lock) the
REP6xx checker consumes.
"""

import ast
import textwrap

from repro.analysis.flow import (
    FunctionFlow,
    ModuleFlow,
    _is_blocking_method,
    build_cfg,
)

MODULE = "repro.serve.mod"


def _parse(source):
    return ast.parse(textwrap.dedent(source))


def _func(tree, name):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    raise AssertionError(f"no function {name!r}")


def _flow(source, name="f"):
    tree = _parse(source)
    module_flow = ModuleFlow(tree, MODULE)
    func = _func(tree, name)
    return module_flow, module_flow.flow_of(func)


def _load(func, name, occurrence=0):
    """The nth ``Name`` load of ``name`` inside the function body."""
    loads = [node for node in ast.walk(func)
             if isinstance(node, ast.Name)
             and isinstance(node.ctx, ast.Load) and node.id == name]
    return loads[occurrence]


class TestCFG:
    def test_straight_line_shape(self):
        tree = _parse("def f():\n    x = 1\n    return x\n")
        blocks, entry, exit_ = build_cfg(_func(tree, "f"))
        assert entry == 0 and exit_ == 1
        assert not blocks[entry].stmts and not blocks[exit_].stmts
        # Entry reaches exit through the statement block.
        reachable = {entry}
        frontier = [entry]
        while frontier:
            for succ in blocks[frontier.pop()].succs:
                if succ not in reachable:
                    reachable.add(succ)
                    frontier.append(succ)
        assert exit_ in reachable

    def test_if_join_has_two_preds(self):
        tree = _parse(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n")
        blocks, _, _ = build_cfg(_func(tree, "f"))
        returns = [b for b in blocks
                   if b.stmts and isinstance(b.stmts[0], ast.Return)]
        assert len(returns) == 1
        assert len(returns[0].preds) == 2

    def test_while_has_back_edge(self):
        tree = _parse(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    return n\n")
        blocks, _, _ = build_cfg(_func(tree, "f"))
        header = next(b for b in blocks
                      if b.stmts and isinstance(b.stmts[0], ast.While))
        body = next(b for b in blocks
                    if b.stmts and isinstance(b.stmts[0], ast.Assign))
        assert header.index in body.succs  # the back edge
        assert body.index in header.succs

    def test_break_exits_loop(self):
        tree = _parse(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        break\n"
            "    return xs\n")
        blocks, _, _ = build_cfg(_func(tree, "f"))
        brk = next(b for b in blocks
                   if b.stmts and isinstance(b.stmts[0], ast.Break))
        ret = next(b for b in blocks
                   if b.stmts and isinstance(b.stmts[0], ast.Return))
        assert ret.index in brk.succs

    def test_try_body_edges_into_handler(self):
        tree = _parse(
            "def f():\n"
            "    try:\n"
            "        x = 1\n"
            "        y = 2\n"
            "    except ValueError:\n"
            "        z = 3\n"
            "    return 0\n")
        blocks, _, _ = build_cfg(_func(tree, "f"))
        # With no `as e` binding the handler-entry block starts with the
        # handler body's first statement.
        handler = next(b for b in blocks if b.stmts
                       and isinstance(b.stmts[0], ast.Assign)
                       and b.stmts[0].targets[0].id == "z")
        assign_blocks = [b for b in blocks if b.stmts
                         and isinstance(b.stmts[0], ast.Assign)
                         and b.stmts[0].targets[0].id in ("x", "y")]
        # Each try-body statement sits in its own block and may raise
        # into the handler after any prefix has executed.
        assert len(assign_blocks) == 2
        for block in assign_blocks:
            assert handler.index in block.succs

    def test_return_stops_fallthrough(self):
        tree = _parse(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n")
        blocks, _, exit_ = build_cfg(_func(tree, "f"))
        first = next(b for b in blocks if b.stmts
                     and isinstance(b.stmts[0], ast.Return)
                     and b.stmts[0].value.value == 1)
        assert first.succs == [exit_]


class TestReachingDefs:
    def test_param_reaches_use(self):
        _, flow = _flow("def f(a):\n    return a\n")
        defs = flow.reaching(_load(flow.func, "a"))
        assert len(defs) == 1
        assert defs[0].name == "a"
        assert isinstance(defs[0].node, ast.arg)

    def test_redefinition_kills(self):
        _, flow = _flow(
            "def f():\n"
            "    x = 1\n"
            "    x = 2\n"
            "    return x\n")
        defs = flow.reaching(_load(flow.func, "x"))
        assert len(defs) == 1
        assert defs[0].value.value == 2

    def test_branch_join_merges_defs(self):
        _, flow = _flow(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n")
        defs = flow.reaching(_load(flow.func, "x"))
        assert sorted(d.value.value for d in defs) == [1, 2]

    def test_no_else_keeps_outer_def(self):
        _, flow = _flow(
            "def f(c):\n"
            "    x = 1\n"
            "    if c:\n"
            "        x = 2\n"
            "    return x\n")
        defs = flow.reaching(_load(flow.func, "x"))
        assert sorted(d.value.value for d in defs) == [1, 2]

    def test_loop_carried_def_reaches_header_use(self):
        _, flow = _flow(
            "def f(n):\n"
            "    x = 0\n"
            "    while n:\n"
            "        y = x\n"
            "        x = 1\n"
            "    return x\n")
        # Inside the loop body the use of x sees both the initial def
        # (first iteration) and the loop-carried redefinition.
        defs = flow.reaching(_load(flow.func, "x"))
        assert sorted(d.value.value for d in defs) == [0, 1]

    def test_try_except_defs_merge_at_join(self):
        _, flow = _flow(
            "def f():\n"
            "    try:\n"
            "        z = 1\n"
            "    except ValueError:\n"
            "        z = 2\n"
            "    return z\n")
        defs = flow.reaching(_load(flow.func, "z"))
        assert sorted(d.value.value for d in defs) == [1, 2]

    def test_handler_sees_partial_try_body(self):
        _, flow = _flow(
            "def f():\n"
            "    w = 0\n"
            "    try:\n"
            "        w = 1\n"
            "        w = 2\n"
            "    except ValueError:\n"
            "        out = w\n"
            "    return 0\n")
        # The handler may run after zero, one, or two try-body
        # assignments: all three defs of w reach the handler's use.
        defs = flow.reaching(_load(flow.func, "w"))
        assert sorted(d.value.value for d in defs) == [0, 1, 2]

    def test_walrus_defines(self):
        _, flow = _flow(
            "def f(xs):\n"
            "    if (n := len(xs)):\n"
            "        return n\n"
            "    return 0\n")
        defs = flow.reaching(_load(flow.func, "n"))
        assert len(defs) == 1 and defs[0].name == "n"

    def test_def_use_chain_roundtrip(self):
        _, flow = _flow(
            "def f():\n"
            "    x = 1\n"
            "    a = x\n"
            "    b = x\n"
            "    return a + b\n")
        defs = flow.reaching(_load(flow.func, "x", 0))
        assert len(defs) == 1
        uses = flow.uses_of(defs[0].index)
        assert len(uses) == 2
        assert all(use.id == "x" for use in uses)


class TestSummaries:
    SOURCE = (
        "import time\n"
        "import asyncio\n"
        "\n"
        "def sync_sleeper():\n"
        "    time.sleep(1)\n"
        "\n"
        "def sync_indirect():\n"
        "    sync_sleeper()\n"
        "\n"
        "def harmless():\n"
        "    return 1\n"
        "\n"
        "async def async_helper():\n"
        "    time.sleep(1)\n"
        "\n"
        "async def caller():\n"
        "    await async_helper()\n"
        "\n"
        "class Svc:\n"
        "    def _inner(self):\n"
        "        time.sleep(1)\n"
        "\n"
        "    async def handler(self):\n"
        "        self._inner()\n")

    def test_async_flag(self):
        module_flow = ModuleFlow(_parse(self.SOURCE), MODULE)
        assert module_flow.summaries["async_helper"].is_async
        assert not module_flow.summaries["sync_sleeper"].is_async

    def test_direct_blocking(self):
        module_flow = ModuleFlow(_parse(self.SOURCE), MODULE)
        summary = module_flow.summaries["sync_sleeper"]
        assert summary.may_block
        assert "time.sleep" in summary.direct_blocking

    def test_transitive_may_block(self):
        module_flow = ModuleFlow(_parse(self.SOURCE), MODULE)
        assert module_flow.summaries["sync_indirect"].may_block
        assert not module_flow.summaries["harmless"].may_block

    def test_self_method_resolves_to_class_qualname(self):
        module_flow = ModuleFlow(_parse(self.SOURCE), MODULE)
        handler = module_flow.summaries["Svc.handler"]
        assert "Svc._inner" in handler.local_calls
        assert handler.may_block

    def test_async_callee_does_not_propagate(self):
        # An awaited async callee suspends rather than blocking the
        # loop thread; may_block must not leak through it.
        module_flow = ModuleFlow(_parse(self.SOURCE), MODULE)
        assert not module_flow.summaries["caller"].may_block

    def test_acquires_lock_via_with(self):
        source = (
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "def f():\n"
            "    with threading.Lock():\n"
            "        pass\n")
        module_flow = ModuleFlow(_parse(source), MODULE)
        assert module_flow.summaries["f"].acquires_lock


class TestLockLike:
    def test_direct_ctor(self):
        source = (
            "import threading\n"
            "def f():\n"
            "    with threading.Lock():\n"
            "        pass\n")
        tree = _parse(source)
        module_flow = ModuleFlow(tree, MODULE)
        with_stmt = next(node for node in ast.walk(tree)
                         if isinstance(node, ast.With))
        assert module_flow.lock_like(
            with_stmt.items[0].context_expr, _func(tree, "f"))

    def test_name_resolved_through_reaching_defs(self):
        source = (
            "import threading\n"
            "def f():\n"
            "    lock = threading.Lock()\n"
            "    with lock:\n"
            "        pass\n")
        tree = _parse(source)
        module_flow = ModuleFlow(tree, MODULE)
        with_stmt = next(node for node in ast.walk(tree)
                         if isinstance(node, ast.With))
        assert module_flow.lock_like(
            with_stmt.items[0].context_expr, _func(tree, "f"))

    def test_disagreeing_defs_are_not_lock_like(self):
        source = (
            "import threading\n"
            "def f(c):\n"
            "    if c:\n"
            "        lock = threading.Lock()\n"
            "    else:\n"
            "        lock = open('x')\n"
            "    with lock:\n"
            "        pass\n")
        tree = _parse(source)
        module_flow = ModuleFlow(tree, MODULE)
        with_stmt = next(node for node in ast.walk(tree)
                         if isinstance(node, ast.With))
        assert not module_flow.lock_like(
            with_stmt.items[0].context_expr, _func(tree, "f"))

    def test_unknown_name_is_not_lock_like(self):
        source = (
            "def f(lock):\n"
            "    with lock:\n"
            "        pass\n")
        tree = _parse(source)
        module_flow = ModuleFlow(tree, MODULE)
        with_stmt = next(node for node in ast.walk(tree)
                         if isinstance(node, ast.With))
        assert not module_flow.lock_like(
            with_stmt.items[0].context_expr, _func(tree, "f"))


class TestBlockingMethodHeuristics:
    def _call(self, source):
        return _parse(source).body[0].value

    def test_str_join_is_not_blocking(self):
        assert not _is_blocking_method(self._call("','.join(parts)"))

    def test_thread_join_is_blocking(self):
        assert _is_blocking_method(self._call("worker.join()"))

    def test_shutdown_wait_false_is_not_blocking(self):
        assert not _is_blocking_method(
            self._call("pool.shutdown(wait=False)"))

    def test_shutdown_default_is_blocking(self):
        assert _is_blocking_method(self._call("pool.shutdown()"))

    def test_bare_open_is_blocking(self):
        assert _is_blocking_method(self._call("open('f')"))


class TestFunctionFlowDirect:
    def test_flow_standalone_construction(self):
        tree = _parse("def f(a, *rest, k=1, **kw):\n    return a\n")
        flow = FunctionFlow(_func(tree, "f"), "f")
        names = {d.name for d in flow.definitions}
        assert {"a", "rest", "k", "kw"} <= names

    def test_reachable_from_entry_covers_graph(self):
        _, flow = _flow(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    return 0\n")
        reachable = flow.reachable_from(flow.entry)
        assert flow.exit in reachable
