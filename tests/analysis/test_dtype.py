"""Dtype-safety checker (REP201/REP202) against the fixture corpus."""

from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis

from .conftest import REPO_ROOT


def test_kernels_fixture_findings(findings_at):
    findings = findings_at("kernels.py")
    assert sorted(f.rule for f in findings) == \
        ["REP201", "REP201", "REP202"]
    source = (REPO_ROOT / "tests/analysis/fixtures/repro/core/"
              "kernels.py").read_text().splitlines()
    for finding in findings:
        assert finding.rule in source[finding.line - 1], finding


def _lint_module(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    config = LintConfig(project_root=tmp_path)
    return run_analysis([path], config)


def test_explicit_dtype_forms_allowed(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f(n, xs):\n"
        "    a = np.zeros(n, dtype=np.int64)\n"
        "    b = np.array(xs, np.uint8)\n"
        "    c = np.full(n, 0, np.int32)\n"
        "    d = np.asarray(xs, dtype=np.float64)\n"
        "    return a, b, c, d\n"))
    assert result.findings == []


def test_inferring_constructors_flagged(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f(n, xs):\n"
        "    return (np.zeros(n), np.ones(n), np.empty(n),\n"
        "            np.arange(n), np.asarray(xs), np.array(xs))\n"))
    assert [f.rule for f in result.findings] == ["REP201"] * 6


def test_alias_resolution(tmp_path):
    result = _lint_module(tmp_path, "repro/core/fast.py", (
        "import numpy\n"
        "from numpy import zeros\n"
        "def f(n):\n"
        "    return numpy.zeros(n), zeros(n)\n"))
    assert [f.rule for f in result.findings] == ["REP201", "REP201"]


def test_out_of_scope_module_not_checked(tmp_path):
    result = _lint_module(tmp_path, "repro/metrics/tables.py", (
        "import numpy as np\n"
        "def f(n):\n"
        "    return np.zeros(n)\n"))
    assert result.findings == []


def test_mixed_width_arithmetic_flagged(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f():\n"
        "    bad = np.int32(1) + np.int64(2)\n"
        "    ok = np.int64(1) + np.int64(2)\n"
        "    return bad, ok\n"))
    assert [f.rule for f in result.findings] == ["REP202"]


# -- flow-aware REP202: widths tracked through assignments --------------


def test_mixed_width_through_assignment(tmp_path):
    # The widths collide two statements after they were pinned; only
    # the dataflow rebase can see it.
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f():\n"
        "    a = np.int32(1)\n"
        "    b = np.int64(2)\n"
        "    return a + b\n"))
    assert [f.rule for f in result.findings] == ["REP202"]


def test_same_width_through_assignment_is_clean(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f():\n"
        "    a = np.int64(1)\n"
        "    b = np.int64(2)\n"
        "    return a + b\n"))
    assert result.findings == []


def test_astype_pins_width(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f(xs):\n"
        "    a = xs.astype(np.int32)\n"
        "    b = np.int64(2)\n"
        "    return a + b\n"))
    assert [f.rule for f in result.findings] == ["REP202"]


def test_disagreeing_defs_stay_silent(tmp_path):
    # a is int32 on one path and int64 on the other: the width is
    # ambiguous, and an ambiguous width is not a *known* mix.
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f(c):\n"
        "    if c:\n"
        "        a = np.int32(1)\n"
        "    else:\n"
        "        a = np.int64(1)\n"
        "    return a + np.int64(2)\n"))
    assert result.findings == []


def test_opaque_def_stays_silent(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f(xs):\n"
        "    a = xs\n"
        "    return a + np.int64(2)\n"))
    assert result.findings == []


def test_self_assignment_cycle_does_not_crash(tmp_path):
    result = _lint_module(tmp_path, "repro/core/kernels.py", (
        "import numpy as np\n"
        "def f(n):\n"
        "    x = np.int32(0)\n"
        "    for _ in range(n):\n"
        "        x = x\n"
        "    return x + np.int64(1)\n"))
    # The loop-carried x = x must terminate resolution; whether the
    # width survives the cycle is secondary to not hanging.
    assert all(f.rule in ("REP202",) for f in result.findings)
