"""Env-registry checker (REP401/REP402) and the registry module."""

import pytest

from repro import envvars
from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis


def test_undeclared_use_reported(findings_at):
    rep401 = [f for f in findings_at("det_bad.py")
              if f.rule == "REP401"]
    assert len(rep401) == 1
    assert "REPRO_UNDECLARED_KNOB" in rep401[0].message


def test_undocumented_declaration_reported(findings_at):
    findings = findings_at("envvars.py")
    assert [f.rule for f in findings] == ["REP402"]
    assert "REPRO_FIXTURE_UNDOCUMENTED" in findings[0].message


def test_silent_without_registry(tmp_path):
    user = tmp_path / "repro" / "experiments" / "knob.py"
    user.parent.mkdir(parents=True)
    user.write_text("NAME = 'REPRO_BOGUS_KNOB'\n")
    config = LintConfig(project_root=tmp_path)
    result = run_analysis([user], config)
    assert not any(f.rule.startswith("REP4") for f in result.findings)


def test_registry_loaded_from_disk_when_not_linted(tmp_path):
    registry = tmp_path / "src" / "repro" / "envvars.py"
    registry.parent.mkdir(parents=True)
    registry.write_text(
        "class EnvVar:\n"
        "    def __init__(self, name, summary=''):\n"
        "        self.name = name\n"
        "REGISTRY = (EnvVar(name='REPRO_DECLARED_KNOB'),)\n")
    user = tmp_path / "repro" / "experiments" / "knob.py"
    user.parent.mkdir(parents=True)
    user.write_text("A = 'REPRO_DECLARED_KNOB'\n"
                    "B = 'REPRO_BOGUS_KNOB'\n")
    config = LintConfig(project_root=tmp_path, env_docs=())
    result = run_analysis([user], config)
    rep401 = [f for f in result.findings if f.rule == "REP401"]
    assert len(rep401) == 1
    assert "REPRO_BOGUS_KNOB" in rep401[0].message


# -- the real registry module ------------------------------------------


def test_registry_is_sorted_and_unique():
    names = [var.name for var in envvars.REGISTRY]
    assert names == sorted(names)
    assert len(names) == len(set(names))
    assert all(name.startswith("REPRO_") for name in names)
    assert all(var.summary for var in envvars.REGISTRY)


def test_read_declared_variable(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "120000")
    assert envvars.read("REPRO_TRACE_LEN") == "120000"
    monkeypatch.delenv("REPRO_TRACE_LEN")
    assert envvars.read("REPRO_TRACE_LEN") is None


def test_read_rejects_undeclared_variable():
    with pytest.raises(KeyError, match="REPRO_NOT_A_KNOB"):
        envvars.read("REPRO_NOT_A_KNOB")


def test_every_registry_entry_reaches_the_environment(monkeypatch):
    # describe() knows each declared name, and read() consults the
    # process environment for exactly that name.
    for var in envvars.REGISTRY:
        assert envvars.describe(var.name) is var
        monkeypatch.setenv(var.name, "sentinel")
        assert envvars.read(var.name) == "sentinel"
        monkeypatch.delenv(var.name)
    assert envvars.registered_names() == \
        tuple(var.name for var in envvars.REGISTRY)


def test_registry_covers_every_env_read_in_tree(repo_root):
    """Belt-and-braces sweep: no REPRO_* literal outside the registry,
    docs and tests refers to an undeclared variable."""
    import re

    declared = set(envvars.registered_names())
    pattern = re.compile(r"REPRO_[A-Z][A-Z0-9_]*")
    offenders = []
    for path in sorted((repo_root / "src").rglob("*.py")):
        for name in pattern.findall(path.read_text()):
            if name not in declared and "FIXTURE" not in name \
                    and "UNDECLARED" not in name:
                offenders.append((path.name, name))
    assert offenders == [], offenders
