"""Known-bad fixture: REP701 — the artifact is not parseable."""


def kernel(backend, engine, run, stats:
    return stats
