"""Known-bad fixture: REP702 — calls outside the template op set."""


def kernel(backend, engine, run, stats):
    todo = np.sort(run.match)  # REP702: np.sort is not whitelisted
    hook = getattr(engine, "targets")  # REP702: getattr escape hatch
    backend.replay_exact(todo)  # REP702: unknown backend primitive
    print(hook)  # REP702: IO in a kernel
    return stats
