"""Known-bad fixture: REP705 — imports escape the namespace contract."""

import os  # REP705: top-level import


def kernel(backend, engine, run, stats):
    from time import sleep  # REP705: nested import
    sleep(float(os.environ.get("X", "0")))
    return stats
