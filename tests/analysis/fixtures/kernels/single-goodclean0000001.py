"""Generated single residual kernel (do not edit).

Known-good fixture: shaped exactly like the real template — whitelisted
ops, explicit dtypes, emptiness guard only.
kernel-version: 1
spec: {"IMM": 2, "IND": 5, "LS": 16, "NBE": 64, "TLS": 4}
"""


def kernel(backend, engine, run, stats):
    compiled = run.compiled
    walk = run.walk
    todo = np.nonzero(compiled.has_exit & ~run.is_ret)[0]
    if todo.shape[0] == 0:
        return stats
    exit_pc = compiled.exit_pc[todo]
    keys = (exit_pc // 16 % 64) * 4 + exit_pc % 16
    values = compiled.exit_target[todo]
    writes = ~run.near_ok[todo]
    store = engine.targets._targets
    observed, fin_k, fin_v = backend.replay(
        keys, values, writes, seed_targets(store))
    wrong = (run.match[todo] & (walk.src[todo] != SRC_NEAR)
             & (observed != values))
    kind = run.mf[todo]
    imm = int(np.count_nonzero(wrong & (kind == 1)))
    ind = int(np.count_nonzero(wrong & (kind == 2)))
    backend.charge(stats, PenaltyKind.MISFETCH_IMMEDIATE, imm,
                   imm * 2)
    backend.charge(stats, PenaltyKind.MISFETCH_INDIRECT, ind,
                   ind * 5)
    for k, v in zip(fin_k.tolist(), fin_v.tolist()):
        store[k] = v
    return stats
