"""Known-bad fixture: REP704 — array constructors inferring dtype."""


def kernel(backend, engine, run, stats):
    ones = np.ones(4)  # REP704: inferred float64
    idx = np.arange(run.n)  # REP704: platform-dependent int width
    tab = np.array((1, 2, 3))  # REP704: value-dependent dtype
    backend.charge(stats, PenaltyKind.MISSELECT,
                   int(np.count_nonzero(ones)),
                   int(idx[0]) + int(tab[0]))
    return stats
