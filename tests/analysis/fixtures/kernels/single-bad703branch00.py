"""Known-bad fixture: REP703 — data-dependent Python branching."""


def kernel(backend, engine, run, stats):
    todo = np.nonzero(run.match)[0]
    if todo.sum() > run.n:  # REP703: branch on data, not a constant
        return stats
    while todo.shape[0]:  # REP703: while loop
        todo = todo[:-1]
    for value in todo[:4]:  # REP703: loop over a data-derived slice
        stats = value
    total = int(todo[0]) if todo[0] > todo[1] else 0  # REP703 ifexp
    return stats
