"""Async-safety fixture (maps to ``repro.serve.async_good``).

The sanctioned idioms from the real prediction service: executor
dispatch for sync work, asyncio primitives for sleeping and locking,
re-raised cancellation.  Must produce zero findings.
"""

import asyncio
import time


def _sync_sweep():
    time.sleep(0.01)


async def good_executor_dispatch(executor):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(executor, _sync_sweep)


async def good_async_sleep():
    await asyncio.sleep(0.1)


async def good_awaited():
    await good_async_sleep()


async def good_task():
    return asyncio.create_task(good_async_sleep())


async def good_async_lock():
    lock = asyncio.Lock()
    async with lock:
        await asyncio.sleep(0)


async def good_reraise():
    try:
        await asyncio.sleep(0)
    except asyncio.CancelledError:
        raise


async def good_exception_only():
    try:
        await asyncio.sleep(0)
    except Exception:  # cannot catch CancelledError on 3.8+
        return None
    return None
