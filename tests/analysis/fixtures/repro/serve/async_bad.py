"""Async-safety fixture (maps to ``repro.serve.async_bad``).

Every marked statement is an event-loop hazard the REP6xx rules must
report.  The sync helpers at the top are clean on their own — they
exist so the transitive may-block summary has something to find.
"""

import asyncio
import threading
import time


def _sync_sweep():
    time.sleep(0.01)  # clean: sync helper (the *call site* is the bug)


def _sync_indirect():
    _sync_sweep()  # clean: still sync; may-block closes transitively


async def bad_sleep():
    time.sleep(0.5)  # REP601: blocking call in async def


async def bad_file_io():
    return open("config.json").read()  # REP601: sync file IO


async def bad_future(fut):
    return fut.result()  # REP601: Future.result() blocks the loop


async def bad_transitive():
    _sync_indirect()  # REP601: un-executor'd may-block helper


async def bad_unawaited():
    bad_sleep()  # REP602: coroutine never awaited


async def bad_locked_await():
    lock = threading.Lock()
    with lock:
        await asyncio.sleep(0)  # REP603: await holding a sync lock


async def bad_swallow():
    try:
        await asyncio.sleep(0)
    except asyncio.CancelledError:  # REP604: cancellation swallowed
        return None


async def bad_finally_return():
    try:
        await asyncio.sleep(0)
    finally:
        return None  # REP604: finally return eats CancelledError
