"""Known-bad determinism fixture (maps to ``repro.core.det_bad``).

Each marked line is an expected finding asserted by
``tests/analysis/test_determinism.py``.
"""

import os
import random
import time

import numpy as np


def jitter():
    return random.random() + np.random.rand()  # two REP101 on this line


def stamp():
    return time.time()  # REP102


def spread(values):
    for value in set(values):  # REP103
        yield value


def knob():
    return os.environ.get("REPRO_UNDECLARED_KNOB")  # REP104 (and REP401)
