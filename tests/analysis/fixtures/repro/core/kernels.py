"""Known-bad dtype fixture (maps to ``repro.core.kernels``).

The module name puts it inside the default dtype-discipline scope; the
marked constructors asserted by ``tests/analysis/test_dtype.py``.
"""

import numpy as np


def build(n):
    starts = np.zeros(n)  # REP201: inferred float64
    mask = np.array([1, 2, 3])  # REP201: platform-dependent int width
    rows = np.arange(n, dtype=np.int64)  # explicit dtype: clean
    taken = np.array([0, 1], np.uint8)  # positional dtype: clean
    return starts, mask, rows, taken


def widths_mixed(flag):
    if np.uint8(flag) == np.int64(1):  # REP202: mixed widths compared
        return np.int64(0) + np.int64(1)  # same width: clean
    return np.int64(0)
