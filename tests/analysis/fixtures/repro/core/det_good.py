"""Known-good twin of ``det_bad``: same behaviours, determinism-safe.

Must produce zero findings — seeded generators, no clock, ordered
iteration, no ambient environment reads.
"""

import random

import numpy as np


def jitter(seed):
    rng = random.Random(seed)
    vec = np.random.default_rng(seed)
    return rng.random() + float(vec.random())


def spread(values):
    for value in sorted(set(values)):
        yield value


def counter():
    ticks = 0

    def tick():
        nonlocal ticks
        ticks += 1
        return ticks

    return tick
