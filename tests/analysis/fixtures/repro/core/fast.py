"""Parity fixture: fast engine touching a field no scalar engine has.

Maps to ``repro.core.fast`` — the default parity fast module.  The
``select_like_missing`` access has no matching state field in the
fixture ``single.py``, so the parity checker must report REP302.
"""


def run_single_fast(engine, fetch_input):
    table = engine.pht  # matches scalar state: clean
    cfg = engine.config  # matches scalar state: clean
    ghost = engine.select_like_missing  # REP302: no scalar engine defines it
    extra = getattr(engine, "select_like_missing", None)  # same field, deduped
    return table, cfg, ghost, extra
