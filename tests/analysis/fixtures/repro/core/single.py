"""Parity fixture: scalar engine with a field the fast twin ignores.

Maps to ``repro.core.single`` — a default parity scalar module.  The
``shadow_counters`` field has no counterpart access in the fixture
``fast.py``, so the parity checker must report REP301 for it.
"""


class SingleBlockEngine:
    def __init__(self, config):
        self.config = config
        self.pht = [0] * 16
        self.shadow_counters = []  # REP301: fast.py never reads this
        self._scratch = None  # private: exempt from the contract


def run(engine, fetch_input):
    return engine.pht
