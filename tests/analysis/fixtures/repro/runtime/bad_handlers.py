"""Exception-hygiene fixture (maps to ``repro.runtime.bad_handlers``).

Not the sanctioned ``repro.runtime.resilience`` module, so both marked
handlers must be reported.
"""


def swallow(action):
    try:
        return action()
    except:  # REP501: bare except
        return None


def swallow_base(action):
    try:
        return action()
    except BaseException:  # REP502: BaseException swallowed
        return None


def relay(action):
    try:
        return action()
    except BaseException:  # re-raised: clean
        raise


def narrow(action):
    try:
        return action()
    except ValueError:  # specific: clean
        return None
