"""Env-registry fixture (maps to ``repro.envvars``).

Declares one variable that no project doc mentions, so the registry
checker must report REP402 for it.  ``det_bad.py``'s literal
``REPRO_UNDECLARED_KNOB`` is absent here, producing REP401.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class EnvVar:
    name: str
    summary: str = ""
    default: str = ""
    owner: str = ""


REGISTRY = (
    EnvVar(name="REPRO_FIXTURE_UNDOCUMENTED",
           summary="declared here but documented nowhere"),  # REP402
)
