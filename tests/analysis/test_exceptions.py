"""Exception-hygiene checker (REP501/REP502)."""

from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis


def test_bad_handlers_fixture(findings_at):
    findings = findings_at("bad_handlers.py")
    assert sorted(f.rule for f in findings) == ["REP501", "REP502"]


def test_reraise_and_narrow_handlers_clean(findings_at):
    # relay() re-raises and narrow() catches ValueError: the fixture
    # must produce exactly the two marked findings and nothing more.
    assert len(findings_at("bad_handlers.py")) == 2


def _lint_module(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    config = LintConfig(project_root=tmp_path)
    return run_analysis([path], config)


def test_except_exception_allowed(tmp_path):
    result = _lint_module(tmp_path, "repro/runtime/worker.py", (
        "def f(action):\n"
        "    try:\n"
        "        return action()\n"
        "    except Exception:\n"
        "        return None\n"))
    assert result.findings == []


def test_sanctioned_module_may_catch_base(tmp_path):
    source = ("def f(action):\n"
              "    try:\n"
              "        return action()\n"
              "    except BaseException:\n"
              "        return None\n")
    sanctioned = _lint_module(
        tmp_path, "repro/runtime/resilience.py", source)
    assert sanctioned.findings == []
    elsewhere = _lint_module(
        tmp_path, "repro/runtime/other.py", source)
    assert [f.rule for f in elsewhere.findings] == ["REP502"]


def test_bare_except_flagged_even_in_sanctioned_module(tmp_path):
    result = _lint_module(tmp_path, "repro/runtime/resilience.py", (
        "def f(action):\n"
        "    try:\n"
        "        return action()\n"
        "    except:\n"
        "        return None\n"))
    assert [f.rule for f in result.findings] == ["REP501"]


def test_tuple_catch_including_base_flagged(tmp_path):
    result = _lint_module(tmp_path, "repro/runtime/worker.py", (
        "def f(action):\n"
        "    try:\n"
        "        return action()\n"
        "    except (ValueError, BaseException):\n"
        "        return None\n"))
    assert [f.rule for f in result.findings] == ["REP502"]


def test_named_reraise_allowed(tmp_path):
    result = _lint_module(tmp_path, "repro/runtime/worker.py", (
        "def f(action, log):\n"
        "    try:\n"
        "        return action()\n"
        "    except BaseException as exc:\n"
        "        log(exc)\n"
        "        raise exc\n"))
    assert result.findings == []
