"""Configuration gates: [tool.reprolint] loading and the mypy table.

The mypy exclusion table is SHRINK-ONLY.  ``ALLOWED_MYPY_EXCLUSIONS``
below is the frozen baseline of legacy modules excluded when the typing
gate was introduced; growing the table in ``pyproject.toml`` fails this
test.  Shrinking it (annotating a legacy package) is always welcome —
update both places.
"""

import pytest

from repro.analysis.config import (
    ConfigError,
    LintConfig,
    from_pyproject,
    load_config,
)

from .conftest import REPO_ROOT

tomllib = pytest.importorskip("tomllib")

PYPROJECT = REPO_ROOT / "pyproject.toml"

#: Legacy modules excluded from strict mypy at gate-introduction time.
#: Shrink-only — never add entries.
ALLOWED_MYPY_EXCLUSIONS = frozenset({
    "repro.__main__",
    "repro.core.*",
    "repro.cost.*",
    "repro.cpu.*",
    "repro.experiments.*",
    "repro.icache.*",
    "repro.isa.*",
    "repro.metrics.*",
    "repro.predictors.*",
    "repro.runtime.*",
    "repro.targets.*",
    "repro.trace.*",
    "repro.workloads.*",
})

#: Modules that must always be strictly checked (never excluded).
STRICT_MODULES = ("repro.analysis", "repro.analysis.*", "repro.envvars",
                  "repro.core.backends", "repro.core.backends.*")


def _pyproject_data():
    return tomllib.loads(PYPROJECT.read_text())


# -- [tool.reprolint] ---------------------------------------------------


def test_project_reprolint_table_loads():
    config = from_pyproject(PYPROJECT)
    assert config.project_root == REPO_ROOT
    assert config.paths == ("src/repro",)
    assert "tests/analysis/fixtures" in config.exclude
    assert config.per_path_ignores["tests/"] == ("REP1", "REP401")
    assert config.parity_fast_module == "repro.core.fast"
    assert config.parity_exempt == ("recovery_log",)
    assert config.env_registry_module == "repro.envvars"


def test_isolated_config_has_no_project_tables():
    config = load_config(start=REPO_ROOT, isolated=True)
    assert config.exclude == ()
    assert config.per_path_ignores == {}
    # but the rule scoping defaults are the project's real scoping
    assert config.parity_fast_module == "repro.core.fast"


def test_custom_table_overrides(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.reprolint]\n'
        'paths = ["lib"]\n'
        'select = ["REP3"]\n'
        '[tool.reprolint.per-path-ignores]\n'
        '"vendored/" = ["REP1"]\n'
        '[tool.reprolint.parity]\n'
        'fast-module = "repro.core.turbo"\n'
        'exempt = ["debug_log"]\n'
        '[tool.reprolint.determinism]\n'
        'packages = ["repro.core"]\n')
    config = from_pyproject(tmp_path / "pyproject.toml")
    assert config.paths == ("lib",)
    assert config.select == ("REP3",)
    assert config.per_path_ignores == {"vendored/": ("REP1",)}
    assert config.parity_fast_module == "repro.core.turbo"
    assert config.parity_exempt == ("debug_log",)
    assert config.determinism_packages == ("repro.core",)


def test_invalid_toml_is_config_error(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.reprolint\n")
    with pytest.raises(ConfigError, match="invalid TOML"):
        from_pyproject(tmp_path / "pyproject.toml")


def test_non_list_value_is_config_error(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.reprolint]\npaths = "src"\n')
    with pytest.raises(ConfigError, match="must be a list"):
        from_pyproject(tmp_path / "pyproject.toml")


def test_defaults_match_documented_scoping():
    config = LintConfig()
    assert config.determinism_packages == (
        "repro.core", "repro.predictors", "repro.trace")
    assert config.dtype_modules == (
        "repro.core.kernels", "repro.core.fast")
    assert config.exception_sanctioned == ("repro.runtime.resilience",)


# -- [tool.mypy] --------------------------------------------------------


def test_mypy_is_strict():
    mypy = _pyproject_data()["tool"]["mypy"]
    assert mypy["strict"] is True
    assert mypy["files"] == ["src/repro"]


def test_mypy_exclusion_table_is_shrink_only():
    mypy = _pyproject_data()["tool"]["mypy"]
    excluded = set()
    for override in mypy.get("overrides", ()):
        if not override.get("ignore_errors"):
            continue
        modules = override["module"]
        if isinstance(modules, str):
            modules = [modules]
        excluded.update(modules)
    grown = excluded - ALLOWED_MYPY_EXCLUSIONS
    assert not grown, (
        f"mypy exclusion table grew by {sorted(grown)}; the table is "
        f"shrink-only — annotate the new module instead")


def test_strict_modules_never_excluded():
    mypy = _pyproject_data()["tool"]["mypy"]
    excluded = set()
    for override in mypy.get("overrides", ()):
        if override.get("ignore_errors"):
            modules = override["module"]
            if isinstance(modules, str):
                modules = [modules]
            excluded.update(modules)
    for module in STRICT_MODULES:
        assert module not in excluded


def test_backends_reenabled_under_core_wildcard():
    """The legacy ``repro.core.*`` exclusion must not swallow backends.

    The backend package postdates the typing gate; a later override
    with ``ignore_errors = false`` re-enables strict checking for it.
    """
    mypy = _pyproject_data()["tool"]["mypy"]
    reenabled = set()
    for override in mypy.get("overrides", ()):
        if override.get("ignore_errors") is False:
            modules = override["module"]
            if isinstance(modules, str):
                modules = [modules]
            reenabled.update(modules)
    assert {"repro.core.backends", "repro.core.backends.*"} <= reenabled


# -- optional: run mypy when the environment has it ---------------------


def test_mypy_passes_on_strict_modules():
    mypy_api = pytest.importorskip(
        "mypy.api", reason="mypy is not installed in this environment")
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(PYPROJECT), str(REPO_ROOT / "src")])
    assert status == 0, stdout + stderr
