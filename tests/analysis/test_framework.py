"""Framework-level tests: walking, scoping, pragmas, filtering, CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.core import (
    module_name,
    pragma_codes,
    rule_enabled,
    rule_matches,
    run_analysis,
)
from repro.analysis.report import render_human, render_json

from .conftest import FIXTURES, REPO_ROOT, SRC_DIR


def _write_module(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _run(tmp_path, relpath, source, **config_kw):
    _write_module(tmp_path, relpath, source)
    config = LintConfig(project_root=tmp_path, **config_kw)
    return run_analysis([tmp_path], config)


class TestModuleName:
    def test_src_tree(self):
        assert module_name("src/repro/core/fast.py") == "repro.core.fast"

    def test_package_init(self):
        assert module_name("src/repro/core/__init__.py") == "repro.core"

    def test_fixture_tree_maps_into_repro(self):
        rel = "tests/analysis/fixtures/repro/core/det_bad.py"
        assert module_name(rel) == "repro.core.det_bad"

    def test_non_repro_path(self):
        assert module_name("tools/check.py") == "tools.check"


class TestRuleSelection:
    def test_prefix_match(self):
        assert rule_matches("REP104", ["REP1"])
        assert rule_matches("REP104", ["REP104"])
        assert not rule_matches("REP104", ["REP2", "REP301"])

    def test_select_then_ignore(self):
        assert rule_enabled("REP104", ["REP1"], [])
        assert not rule_enabled("REP104", ["REP2"], [])
        assert not rule_enabled("REP104", ["REP1"], ["REP104"])
        assert rule_enabled("REP104", [], [])

    def test_corpus_select(self, corpus_result):
        config = LintConfig(project_root=REPO_ROOT)
        only_det = run_analysis([FIXTURES], config, select=["REP1"])
        assert only_det.findings
        assert all(f.rule.startswith("REP1") for f in only_det.findings)
        assert len(only_det.findings) < len(corpus_result.findings)

    def test_corpus_ignore(self, corpus_result):
        config = LintConfig(project_root=REPO_ROOT)
        no_det = run_analysis([FIXTURES], config, ignore=["REP1"])
        assert no_det.findings
        assert not any(f.rule.startswith("REP1") for f in no_det.findings)


class TestPragmas:
    SOURCE = ("import time\n"
              "\n"
              "def stamp():\n"
              "    return time.time(){pragma}\n")

    def test_parse(self):
        assert pragma_codes("x = 1  # reprolint: disable=REP102") == \
            ("REP102",)
        assert pragma_codes("x  # reprolint: disable=REP1, REP301") == \
            ("REP1", "REP301")
        assert pragma_codes("x = 1  # a normal comment") == ()

    def test_without_pragma_fires(self, tmp_path):
        result = _run(tmp_path, "repro/core/mod.py",
                      self.SOURCE.format(pragma=""))
        assert [f.rule for f in result.findings] == ["REP102"]

    def test_exact_rule_suppresses(self, tmp_path):
        result = _run(tmp_path, "repro/core/mod.py", self.SOURCE.format(
            pragma="  # reprolint: disable=REP102"))
        assert result.findings == []

    def test_prefix_and_all_suppress(self, tmp_path):
        for pragma in ("REP1", "all"):
            result = _run(
                tmp_path, f"repro/core/mod_{pragma.lower()}.py",
                self.SOURCE.format(
                    pragma=f"  # reprolint: disable={pragma}"))
            assert result.findings == []

    def test_other_rule_does_not_suppress(self, tmp_path):
        result = _run(tmp_path, "repro/core/mod.py", self.SOURCE.format(
            pragma="  # reprolint: disable=REP201"))
        assert [f.rule for f in result.findings] == ["REP102"]


class TestPerPathIgnores:
    def test_prefix_table_filters(self):
        config = LintConfig(
            project_root=REPO_ROOT,
            per_path_ignores={"tests/": ("REP5",)})
        result = run_analysis([FIXTURES], config)
        assert not any(f.rule.startswith("REP5") for f in result.findings)
        assert any(f.rule.startswith("REP1") for f in result.findings)


class TestParseErrors:
    def test_syntax_error_reported_as_rep001(self, tmp_path):
        result = _run(tmp_path, "repro/core/broken.py",
                      "def oops(:\n    pass\n")
        assert [f.rule for f in result.findings] == ["REP001"]
        assert "cannot parse" in result.findings[0].message


class TestReports:
    def test_json_schema(self, corpus_result):
        payload = json.loads(render_json(corpus_result))
        assert payload["schema_version"] == 2
        assert payload["tool"] == "reprolint"
        assert payload["n_files"] == corpus_result.n_files
        assert sum(payload["counts"].values()) == \
            len(payload["findings"])
        first = payload["findings"][0]
        assert set(first) == {"rule", "family", "path", "line", "col",
                              "severity", "message", "hint"}

    def test_json_family_matches_rule(self, corpus_result):
        payload = json.loads(render_json(corpus_result))
        families = {"1": "determinism", "2": "dtype", "3": "parity",
                    "4": "env", "5": "exceptions", "6": "async",
                    "7": "kernel", "0": "framework"}
        for finding in payload["findings"]:
            assert finding["family"] == families[finding["rule"][3]]

    def test_json_per_family_timings(self, corpus_result):
        payload = json.loads(render_json(corpus_result))
        timings = payload["timings_s"]
        # One entry per registered checker family; times are small
        # non-negative floats (the self-time budget lives in
        # test_self_clean).
        for family in ("determinism", "dtype", "parity", "env",
                       "exceptions", "async"):
            assert family in timings, family
            assert timings[family] >= 0.0

    def test_human_summary_line(self, corpus_result):
        report = render_human(corpus_result)
        assert report.splitlines()[-1] == (
            f"{len(corpus_result.findings)} findings "
            f"({corpus_result.n_files} files checked)")

    def test_findings_sorted(self, corpus_result):
        keys = [f.sort_key() for f in corpus_result.findings]
        assert keys == sorted(keys)


def _cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + \
        env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, env=env, capture_output=True, text=True)


class TestCli:
    def test_isolated_corpus_exits_nonzero_with_findings(self):
        proc = _cli("--isolated", "--format", "json",
                    "tests/analysis/fixtures")
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"]
        for family in ("REP1", "REP2", "REP3", "REP4", "REP5", "REP6"):
            assert any(rule.startswith(family)
                       for rule in payload["counts"]), family

    def test_default_run_on_project_tree_is_clean(self):
        proc = _cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_select_filters_cli(self):
        proc = _cli("--isolated", "--select", "REP5", "--format",
                    "json", "tests/analysis/fixtures")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert set(payload["counts"]) == {"REP501", "REP502"}

    def test_list_rules(self):
        proc = _cli("--list-rules")
        assert proc.returncode == 0
        for rule in ("REP001", "REP101", "REP201", "REP301", "REP401",
                     "REP501", "REP601", "REP701"):
            assert rule in proc.stdout

    def test_missing_path_is_usage_error(self):
        proc = _cli("no/such/dir")
        assert proc.returncode == 2
        assert "no such path" in proc.stderr

    def test_output_file(self, tmp_path):
        out = tmp_path / "report.json"
        proc = _cli("--isolated", "--format", "json", "--output",
                    str(out), "tests/analysis/fixtures")
        assert proc.returncode == 1
        payload = json.loads(out.read_text())
        assert payload["tool"] == "reprolint"
        assert "wrote" in proc.stdout
