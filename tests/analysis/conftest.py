"""Shared fixtures for the reprolint test suite.

The known-bad/known-good corpus under ``fixtures/`` is linted once per
session with the built-in default config (the same thing the CLI's
``--isolated`` flag selects) and shared by every per-checker test
module.  ``project_root`` points at the real repo root so the env
registry checker sees the real README/docs when judging REP402.
"""

from pathlib import Path

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC_DIR = REPO_ROOT / "src"


@pytest.fixture(scope="session")
def repo_root():
    return REPO_ROOT


@pytest.fixture(scope="session")
def fixtures_dir():
    return FIXTURES


@pytest.fixture(scope="session")
def corpus_result():
    """The fixture corpus linted with pure default configuration."""
    config = LintConfig(project_root=REPO_ROOT)
    return run_analysis([FIXTURES], config)


@pytest.fixture(scope="session")
def findings_at(corpus_result):
    """Filter the corpus findings down to one fixture file."""

    def _at(filename):
        return [f for f in corpus_result.findings
                if f.path.endswith("/" + filename)]

    return _at
