"""REP7xx generated-kernel gate tests.

Three layers: the fixture corpus under ``fixtures/kernels`` (one
known-bad artifact per rule plus a known-good one), the generation-time
gate (modes, memoization, loader integration), and a live regression
that generates real fig8 kernels through the compiled backend under
``REPRO_KERNEL_GATE=enforce`` and re-lints the populated cache.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.kernelgate import (
    KernelGateError,
    clear_gate_memo,
    gate_generated_kernel,
    lint_kernel_cache,
    lint_kernel_source,
    synthetic_path,
)
from repro.core.backends import BACKEND_ENV
from repro.core.backends.codegen import (
    GATE_ENV,
    KernelLoader,
    KernelSpec,
    generate_source,
)
from repro.core.engine_mode import ENGINE_ENV

from .conftest import REPO_ROOT, SRC_DIR

KERNEL_FIXTURES = Path(__file__).resolve().parent / "fixtures" / "kernels"

DIRTY_SOURCE = ('"""Generated kernel."""\n'
                "def kernel(backend, engine, run, stats):\n"
                "    x = np.ones(4)\n"
                "    return stats\n")

CLEAN_SOURCE = ('"""Generated kernel."""\n'
                "def kernel(backend, engine, run, stats):\n"
                "    return stats\n")


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_gate_memo()
    yield
    clear_gate_memo()


def _by_digest(findings):
    out = {}
    for finding in findings:
        digest = finding.path[len("<generated:"):-1]
        out.setdefault(digest, []).append(finding)
    return out


class TestFixtureCorpus:
    @pytest.fixture(scope="class")
    def sweep(self):
        return lint_kernel_cache(KERNEL_FIXTURES)

    def test_counts_all_artifacts(self, sweep):
        _, n_kernels = sweep
        assert n_kernels == 6

    def test_good_kernel_is_clean(self, sweep):
        findings, _ = sweep
        assert "goodclean0000001" not in _by_digest(findings)

    def test_each_rule_fires_on_its_fixture(self, sweep):
        findings, _ = sweep
        by_digest = _by_digest(findings)
        assert {f.rule for f in by_digest["bad701parse000"]} == \
            {"REP701"}
        assert {f.rule for f in by_digest["bad702opset000"]} == \
            {"REP702"}
        assert {f.rule for f in by_digest["bad703branch00"]} == \
            {"REP703"}
        assert {f.rule for f in by_digest["bad704dtype000"]} == \
            {"REP704"}
        # The import fixture also calls the imported names, which are
        # (correctly) outside the op set.
        assert "REP705" in {f.rule for f in by_digest["bad705import00"]}

    def test_findings_use_synthetic_paths(self, sweep):
        findings, _ = sweep
        assert findings
        for finding in findings:
            assert finding.path.startswith("<generated:")
            assert finding.path.endswith(">")

    def test_select_filters_sweep(self):
        findings, _ = lint_kernel_cache(KERNEL_FIXTURES,
                                        select=("REP705",))
        assert findings
        assert {f.rule for f in findings} == {"REP705"}

    def test_ignore_filters_sweep(self):
        findings, _ = lint_kernel_cache(KERNEL_FIXTURES,
                                        ignore=("REP702",))
        assert findings
        assert "REP702" not in {f.rule for f in findings}

    def test_family_is_kernel(self, sweep):
        findings, _ = sweep
        assert {f.family for f in findings} == {"kernel"}

    def test_missing_directory_is_empty_sweep(self, tmp_path):
        findings, n_kernels = lint_kernel_cache(tmp_path / "nope")
        assert findings == [] and n_kernels == 0


class TestLintKernelSource:
    def test_clean_source(self):
        assert lint_kernel_source(CLEAN_SOURCE, "d" * 16) == []

    def test_dirty_source_reports_synthetic_path(self):
        findings = lint_kernel_source(DIRTY_SOURCE, "d" * 16)
        assert [f.rule for f in findings] == ["REP704"]
        assert findings[0].path == synthetic_path("d" * 16)

    def test_pragma_suppresses_generated_finding(self):
        source = DIRTY_SOURCE.replace(
            "np.ones(4)",
            "np.ones(4)  # reprolint: disable=REP704")
        assert lint_kernel_source(source, "d" * 16) == []

    def test_select_and_ignore_are_uniform(self):
        assert lint_kernel_source(DIRTY_SOURCE, "d" * 16,
                                  select=("REP705",)) == []
        assert lint_kernel_source(DIRTY_SOURCE, "d" * 16,
                                  ignore=("REP7",)) == []

    def test_config_per_path_ignores_do_not_crash(self):
        # Synthetic paths do not exist on disk; the shared post-filter
        # must handle them without touching the filesystem.
        config = LintConfig(project_root=REPO_ROOT,
                            per_path_ignores={"src/": ("REP1",)})
        findings = lint_kernel_source(DIRTY_SOURCE, "d" * 16,
                                      config=config)
        assert [f.rule for f in findings] == ["REP704"]


class TestGate:
    def test_clean_kernel_passes_enforce(self):
        assert gate_generated_kernel(CLEAN_SOURCE, "a" * 16,
                                     "enforce") == ()

    def test_enforce_raises_with_findings(self):
        with pytest.raises(KernelGateError) as exc_info:
            gate_generated_kernel(DIRTY_SOURCE, "a" * 16, "enforce")
        err = exc_info.value
        assert err.digest == "a" * 16
        assert [f.rule for f in err.findings] == ["REP704"]
        assert "REP704" in str(err)

    def test_warn_reports_and_continues(self, capsys):
        findings = gate_generated_kernel(DIRTY_SOURCE, "a" * 16, "warn")
        assert [f.rule for f in findings] == ["REP704"]
        assert "REP704" in capsys.readouterr().err

    def test_off_skips_linting(self):
        assert gate_generated_kernel(DIRTY_SOURCE, "a" * 16, "off") == ()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel gate mode"):
            gate_generated_kernel(CLEAN_SOURCE, "a" * 16, "strict")

    def test_memo_reuses_verdict(self):
        first = gate_generated_kernel(DIRTY_SOURCE, "a" * 16, "warn")
        second = gate_generated_kernel(DIRTY_SOURCE, "a" * 16, "warn")
        assert first is second

    def test_tampered_artifact_does_not_poison_clean_regeneration(self):
        # Same digest, different content: the dirty disk artifact's
        # verdict must not be replayed for the clean regeneration.
        digest = "b" * 16
        with pytest.raises(KernelGateError):
            gate_generated_kernel(DIRTY_SOURCE, digest, "enforce")
        assert gate_generated_kernel(CLEAN_SOURCE, digest,
                                     "enforce") == ()


class TestLoaderIntegration:
    def _spec(self):
        consts = {"LS": 16, "NBE": 64, "TLS": 16, "IMM": 2, "IND": 4}
        return KernelSpec("single", tuple(sorted(consts.items())))

    def test_tampered_artifact_regenerated_under_enforce(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        spec = self._spec()
        path = tmp_path / f"single-{spec.digest()}.py"
        path.write_text(DIRTY_SOURCE)  # parses, but REP704-dirty
        loader = KernelLoader(cache_root=tmp_path)
        assert callable(loader.load(spec))
        assert loader.last_origin == "generated"
        # The rewrite healed the artifact: a fresh sweep is clean.
        findings, n_kernels = lint_kernel_cache(tmp_path)
        assert n_kernels == 1 and findings == []

    def test_gate_off_loads_tampered_artifact(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv(GATE_ENV, "off")
        spec = self._spec()
        path = tmp_path / f"single-{spec.digest()}.py"
        path.write_text(CLEAN_SOURCE)  # not the real kernel, but clean
        loader = KernelLoader(cache_root=tmp_path)
        assert callable(loader.load(spec))
        assert loader.last_origin == "disk"

    def test_bogus_gate_mode_is_a_hard_error(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv(GATE_ENV, "bogus")
        loader = KernelLoader(cache_root=tmp_path)
        with pytest.raises(ValueError, match="REPRO_KERNEL_GATE"):
            loader.load(self._spec())


class TestLiveFig8Kernels:
    """Real generated kernels must pass their own gate."""

    def test_all_template_kinds_gate_clean(self, tmp_path,
                                           monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        loader = KernelLoader(cache_root=tmp_path)
        specs = _all_template_specs()
        for spec in specs:
            assert callable(loader.load(spec))  # enforce: raises if dirty
        findings, n_kernels = lint_kernel_cache(tmp_path)
        assert n_kernels == len(specs)
        assert findings == []

    def test_engine_populated_cache_lints_clean(self, tmp_path,
                                                monkeypatch):
        # The live regression: run a real engine through the compiled
        # backend (kernels generated + persisted under enforce), then
        # audit the populated cache exactly like CI does.
        from repro.core import EngineConfig, SingleBlockEngine
        from repro.icache import CacheGeometry
        from repro.workloads import load_fetch_input

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(ENGINE_ENV, "fast")
        monkeypatch.setenv(BACKEND_ENV, "compiled")
        monkeypatch.delenv(GATE_ENV, raising=False)
        geometry = CacheGeometry.self_aligned(8)
        engine = SingleBlockEngine(
            EngineConfig(geometry=geometry, n_select_tables=4))
        engine.run(load_fetch_input("li", geometry, 4_000))

        findings, n_kernels = lint_kernel_cache(tmp_path)
        assert n_kernels >= 1
        assert findings == []


def _all_template_specs():
    """One spec per kernel template variant (mirrors codegen use)."""
    base = {"LS": 16, "NBE": 64, "TLS": 16, "IMM": 2, "IND": 4}
    dual = {"TOTAL": 64, "W": 4, "PAYL": 16, "IMM": 2, "IND": 4,
            "LS": 16, "NBE": 64, "TLS": 16}
    specs = []
    for kind, consts in (("single", base),
                         ("dual_double", dual),
                         ("dual_single", dual),
                         ("multi", dict(base, T=3)),
                         ("multi", dict(base, T=0)),
                         ("two_ahead", base)):
        spec = KernelSpec(kind, tuple(sorted(consts.items())))
        try:
            generate_source(spec)
        except (ValueError, KeyError):
            continue  # constant set mismatch: skip, not a gate concern
        specs.append(spec)
    assert specs, "no template variant produced source"
    return specs


class TestKernelsCli:
    def _cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + \
            env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True)

    def test_sweep_fixture_corpus_fails(self):
        proc = self._cli("--kernels", "tests/analysis/fixtures/kernels",
                         "--format", "json")
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["n_files"] == 6
        for rule in ("REP701", "REP702", "REP703", "REP704", "REP705"):
            assert rule in payload["counts"], rule
        assert all(f["family"] == "kernel" for f in payload["findings"])

    def test_sweep_select_filters(self):
        proc = self._cli("--kernels", "tests/analysis/fixtures/kernels",
                         "--select", "REP704", "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert set(payload["counts"]) == {"REP704"}

    def test_sweep_missing_cache_is_usage_error(self):
        proc = self._cli("--kernels", "no/such/cache")
        assert proc.returncode == 2

    def test_sweep_clean_cache_exits_zero(self, tmp_path):
        KernelLoader(cache_root=tmp_path).load(KernelSpec(
            "single", tuple(sorted(
                {"LS": 16, "NBE": 64, "TLS": 16, "IMM": 2,
                 "IND": 4}.items()))))
        proc = self._cli("--kernels", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout
