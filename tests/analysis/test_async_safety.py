"""REP6xx async-safety checker tests (corpus + scoping)."""

from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis

from .conftest import REPO_ROOT


def _rules_by_line(findings):
    return sorted((f.line, f.rule) for f in findings)


class TestAsyncBadCorpus:
    def test_every_marked_hazard_fires(self, findings_at):
        assert _rules_by_line(findings_at("async_bad.py")) == [
            (22, "REP601"),   # time.sleep in async def
            (26, "REP601"),   # open().read() sync file IO
            (30, "REP601"),   # Future.result()
            (34, "REP601"),   # transitive may-block helper
            (38, "REP602"),   # coroutine never awaited
            (44, "REP603"),   # await holding threading.Lock
            (50, "REP604"),   # CancelledError swallowed
            (58, "REP604"),   # return in finally
        ]

    def test_transitive_finding_names_the_callee(self, findings_at):
        transitive = [f for f in findings_at("async_bad.py")
                      if f.line == 34]
        assert len(transitive) == 1
        assert "_sync_indirect" in transitive[0].message

    def test_hints_point_at_serve_idioms(self, findings_at):
        by_rule = {f.rule: f for f in findings_at("async_bad.py")}
        assert "run_in_executor" in by_rule["REP601"].hint
        assert "create_task" in by_rule["REP602"].hint
        assert "asyncio.Lock" in by_rule["REP603"].hint
        assert "cancellation" in by_rule["REP604"].hint


class TestAsyncGoodCorpus:
    def test_good_file_is_clean(self, findings_at):
        assert findings_at("async_good.py") == []


class TestScoping:
    SOURCE = ("import time\n"
              "\n"
              "async def handler():\n"
              "    time.sleep(1)\n")

    def _run(self, tmp_path, relpath, **config_kw):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.SOURCE)
        config = LintConfig(project_root=REPO_ROOT, **config_kw)
        return run_analysis([tmp_path], config)

    def test_outside_async_packages_is_silent(self, tmp_path):
        result = self._run(tmp_path, "repro/core/loopy.py")
        assert not any(f.rule.startswith("REP6")
                       for f in result.findings)

    def test_inside_default_scope_fires(self, tmp_path):
        result = self._run(tmp_path, "repro/serve/loopy.py")
        assert any(f.rule == "REP601" for f in result.findings)

    def test_custom_async_packages(self, tmp_path):
        result = self._run(tmp_path, "repro/core/loopy.py",
                           async_packages=("repro.core",))
        assert any(f.rule == "REP601" for f in result.findings)
