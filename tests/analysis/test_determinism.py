"""Determinism checker (REP101-REP104) against the fixture corpus."""

from repro.analysis.config import LintConfig
from repro.analysis.core import run_analysis

from .conftest import REPO_ROOT


def _rules(findings):
    return sorted(f.rule for f in findings)


def test_det_bad_findings(findings_at):
    findings = findings_at("det_bad.py")
    assert _rules(findings) == [
        "REP101", "REP101", "REP102", "REP103", "REP104", "REP401"]


def test_det_bad_lines(findings_at):
    by_rule = {}
    for finding in findings_at("det_bad.py"):
        by_rule.setdefault(finding.rule, []).append(finding.line)
    source = (REPO_ROOT / "tests/analysis/fixtures/repro/core/"
              "det_bad.py").read_text().splitlines()
    for rule, lines in by_rule.items():
        if rule == "REP401":
            continue
        for line in lines:
            assert rule in source[line - 1], (rule, line)


def test_det_good_is_clean(findings_at):
    assert findings_at("det_good.py") == []


def _lint_module(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    config = LintConfig(project_root=tmp_path)
    return run_analysis([path], config)


def test_import_aliasing_is_resolved(tmp_path):
    result = _lint_module(tmp_path, "repro/core/aliased.py", (
        "import numpy.random as npr\n"
        "from time import time as wall\n"
        "def f(x):\n"
        "    npr.shuffle(x)\n"
        "    return wall()\n"))
    assert _rules(result.findings) == ["REP101", "REP102"]


def test_seeded_constructors_allowed(tmp_path):
    result = _lint_module(tmp_path, "repro/core/seeded.py", (
        "import random\n"
        "import numpy as np\n"
        "def f(seed):\n"
        "    return (random.Random(seed).random()\n"
        "            + np.random.default_rng(seed).random())\n"))
    assert result.findings == []


def test_core_rules_scoped_to_determinism_packages(tmp_path):
    # Same RNG/clock/set-iteration code outside repro.core/predictors/
    # trace: only the globally-scoped REP104 may fire (none here).
    result = _lint_module(tmp_path, "repro/experiments/loose.py", (
        "import random\n"
        "import time\n"
        "def f(values):\n"
        "    random.random()\n"
        "    time.time()\n"
        "    return [v for v in set(values)]\n"))
    assert result.findings == []


def test_env_read_flagged_everywhere(tmp_path):
    result = _lint_module(tmp_path, "repro/experiments/knobs.py", (
        "import os\n"
        "def f():\n"
        "    a = os.environ.get('HOME')\n"
        "    b = os.getenv('HOME')\n"
        "    c = os.environ['HOME']\n"
        "    return a, b, c\n"))
    assert _rules(result.findings) == ["REP104", "REP104", "REP104"]


def test_env_write_not_flagged(tmp_path):
    result = _lint_module(tmp_path, "repro/experiments/setter.py", (
        "import os\n"
        "def f():\n"
        "    os.environ['HOME'] = '/tmp'\n"))
    assert result.findings == []


def test_sanctioned_modules_may_read_env(tmp_path):
    for relpath in ("repro/core/engine_mode.py",
                    "repro/runtime/executor.py",
                    "repro/envvars.py"):
        result = _lint_module(tmp_path, relpath, (
            "import os\n"
            "def f():\n"
            "    return os.environ.get('HOME')\n"))
        assert result.findings == [], relpath


def test_set_iteration_variants(tmp_path):
    result = _lint_module(tmp_path, "repro/core/iters.py", (
        "def f(a, b):\n"
        "    for x in a | b:\n"
        "        pass\n"
        "    for x in {1, 2, 3}:\n"
        "        pass\n"
        "    return [k for k in vars()]\n"))
    # `a | b` on unknown operands is not provably a set: only the
    # literal and vars() iterations are flagged.
    assert _rules(result.findings) == ["REP103", "REP103"]


def test_sorted_set_iteration_allowed(tmp_path):
    result = _lint_module(tmp_path, "repro/core/ordered.py", (
        "def f(values):\n"
        "    return [v for v in sorted(set(values))]\n"))
    assert result.findings == []
