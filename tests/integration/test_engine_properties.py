"""Property-based tests over the fetch engines.

Random well-formed programs (synthetic generator) run through every
engine under random geometries/configs; structural invariants must hold
regardless of workload or configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    DOUBLE_SELECT,
    DualBlockEngine,
    EngineConfig,
    PenaltyKind,
    SINGLE_SELECT,
    SingleBlockEngine,
)
from repro.core.config import FetchInput
from repro.core.multi import MultiBlockEngine
from repro.cpu import Machine
from repro.icache import CacheGeometry
from repro.trace import SyntheticSpec, synthetic_program

geometries = st.sampled_from([
    CacheGeometry.normal(8),
    CacheGeometry.extended(8),
    CacheGeometry.self_aligned(8),
    CacheGeometry.normal(4),
])

specs = st.builds(
    SyntheticSpec,
    seed=st.integers(0, 5_000),
    n_functions=st.integers(0, 3),
    loop_depth=st.integers(1, 3),
    irregularity=st.floats(0.0, 1.0),
    body_ops=st.integers(1, 8),
    iterations=st.integers(2, 12),
)

configs = st.builds(
    dict,
    history_length=st.integers(4, 12),
    n_select_tables=st.sampled_from([1, 2, 4, 8]),
    selection=st.sampled_from([SINGLE_SELECT, DOUBLE_SELECT]),
    near_block=st.booleans(),
    ras_size=st.sampled_from([4, 32]),
)


def make_input(spec, geometry, budget=15_000):
    program = synthetic_program(spec)
    trace = Machine(program).run(max_instructions=budget).trace
    return FetchInput.from_trace(trace, program.static_code(), geometry)


def check_invariants(stats, fetch_input):
    # Conservation.
    assert stats.n_instructions == fetch_input.trace.n_instructions
    assert stats.n_blocks == fetch_input.blocks.n_blocks
    assert stats.n_branches == fetch_input.trace.n_branches
    # Cycle sanity.
    assert stats.base_cycles >= 1
    assert stats.penalty_cycles >= 0
    assert stats.fetch_cycles == stats.base_cycles + stats.penalty_cycles
    assert stats.ipc_f > 0
    # Event bookkeeping: counts and cycles agree in sign; every charged
    # category has at least one cycle per event except bank conflicts
    # (block-1 conflicts cost zero cycles by Table 3).
    for kind, count in stats.event_counts.items():
        assert count >= 0
        cycles = stats.event_cycles.get(kind, 0)
        assert cycles >= 0
        if kind != PenaltyKind.BANK_CONFLICT:
            assert cycles >= count
    # BEP decomposition sums to the whole.
    total = sum(stats.bep_component(kind) for kind in PenaltyKind)
    assert abs(total - stats.bep) < 1e-9


@settings(max_examples=20, deadline=None)
@given(spec=specs, geometry=geometries, cfg=configs)
def test_single_block_invariants(spec, geometry, cfg):
    fetch_input = make_input(spec, geometry)
    config = EngineConfig(geometry=geometry, **cfg)
    stats = SingleBlockEngine(config).run(fetch_input)
    check_invariants(stats, fetch_input)
    # One block per cycle.
    assert stats.base_cycles == stats.n_blocks
    # No dual-mode penalties in single-block fetching.
    assert PenaltyKind.MISSELECT not in stats.event_counts
    assert PenaltyKind.BANK_CONFLICT not in stats.event_counts


@settings(max_examples=20, deadline=None)
@given(spec=specs, geometry=geometries, cfg=configs)
def test_dual_block_invariants(spec, geometry, cfg):
    fetch_input = make_input(spec, geometry)
    config = EngineConfig(geometry=geometry, **cfg)
    stats = DualBlockEngine(config).run(fetch_input)
    check_invariants(stats, fetch_input)
    assert stats.base_cycles == 1 + stats.n_blocks // 2
    if config.selection == DOUBLE_SELECT:
        assert PenaltyKind.BIT not in stats.event_counts


@settings(max_examples=12, deadline=None)
@given(spec=specs, geometry=geometries,
       n=st.integers(1, 5))
def test_multi_block_invariants(spec, geometry, n):
    fetch_input = make_input(spec, geometry)
    config = EngineConfig(geometry=geometry, n_select_tables=8)
    stats = MultiBlockEngine(config, n).run(fetch_input)
    check_invariants(stats, fetch_input)


@settings(max_examples=10, deadline=None)
@given(spec=specs, geometry=geometries)
def test_engines_are_deterministic(spec, geometry):
    fetch_input = make_input(spec, geometry)
    config = EngineConfig(geometry=geometry, n_select_tables=4)
    a = DualBlockEngine(config).run(fetch_input)
    b = DualBlockEngine(config).run(fetch_input)
    assert a.event_cycles == b.event_cycles
    assert a.fetch_cycles == b.fetch_cycles


@settings(max_examples=15, deadline=None)
@given(spec=specs, geometry=geometries, cfg=configs,
       engine_kind=st.sampled_from(["single", "dual", "multi3",
                                    "two_ahead"]))
def test_fast_engine_matches_scalar(spec, geometry, cfg, engine_kind):
    """Random program x config x engine: fast is bit-exact vs scalar."""
    import os

    from repro.core.engine_mode import ENGINE_ENV
    from repro.core.multi import MultiBlockEngine as Multi
    from repro.core.two_ahead import TwoBlockAheadEngine

    fetch_input = make_input(spec, geometry)
    factories = {
        "single": SingleBlockEngine,
        "dual": DualBlockEngine,
        "multi3": lambda c: Multi(c, 3),
        "two_ahead": TwoBlockAheadEngine,
    }
    results = {}
    previous = os.environ.get(ENGINE_ENV)
    try:
        for mode in ("scalar", "fast"):
            os.environ[ENGINE_ENV] = mode
            config = EngineConfig(geometry=geometry, **cfg)
            results[mode] = factories[engine_kind](config).run(fetch_input)
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous
    assert results["fast"] == results["scalar"]


@settings(max_examples=10, deadline=None)
@given(spec=specs)
def test_separate_bit_never_beats_perfect_bit(spec):
    geometry = CacheGeometry.normal(8)
    fetch_input = make_input(spec, geometry)
    perfect = SingleBlockEngine(
        EngineConfig(geometry=geometry)).run(fetch_input)
    small = SingleBlockEngine(
        EngineConfig(geometry=geometry, bit_entries=2)).run(fetch_input)
    assert small.fetch_cycles >= perfect.fetch_cycles
