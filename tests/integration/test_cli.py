"""CLI smoke tests (small budgets keep them fast)."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 18
        assert "compress" in out and "tomcatv" in out

    def test_table7(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "52.4 Kbits" in out

    def test_fig6_with_budget(self, capsys):
        assert main(["fig6", "--budget", "20000"]) == 0
        out = capsys.readouterr().out
        assert "blocked miss" in out

    def test_run_single_block(self, capsys):
        assert main(["run", "swim", "--budget", "20000",
                     "--blocks", "1", "--cache", "normal"]) == 0
        out = capsys.readouterr().out
        assert "IPC_f" in out

    def test_run_dual_block_double_selection(self, capsys):
        assert main(["run", "compress", "--budget", "20000",
                     "--selection", "double"]) == 0
        assert "IPC_f" in capsys.readouterr().out

    def test_run_multi_block(self, capsys):
        assert main(["run", "mgrid", "--budget", "20000",
                     "--blocks", "3"]) == 0
        assert "IPC_f" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_report_writes_markdown(self, capsys, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", "--budget", "15000",
                     "--output", str(out)]) == 0
        text = out.read_text()
        assert "Figure 6" in text
        assert "Table 7" in text
        assert "hardware cost" in text

    def test_run_with_btb_target(self, capsys):
        assert main(["run", "vortex", "--budget", "15000",
                     "--target", "btb", "--target-entries", "32"]) == 0
        assert "IPC_f" in capsys.readouterr().out

    def test_engine_flag_modes_print_identically(self, capsys,
                                                 monkeypatch):
        from repro.core.engine_mode import ENGINE_ENV

        monkeypatch.setenv(ENGINE_ENV, "fast")  # restored after test
        assert main(["run", "compress", "--budget", "15000",
                     "--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["run", "compress", "--budget", "15000",
                     "--engine", "fast"]) == 0
        assert capsys.readouterr().out == scalar_out

    def test_bad_engine_env_exits_2(self, capsys, monkeypatch):
        from repro.core.engine_mode import ENGINE_ENV

        monkeypatch.setenv(ENGINE_ENV, "turbo")
        assert main(["fig6", "--budget", "15000"]) == 2
        assert ENGINE_ENV in capsys.readouterr().err

    @pytest.mark.parametrize("variable,value", [
        ("REPRO_TRACER", "bogus"),
        ("REPRO_TRACE_CHUNK", "abc"),
        ("REPRO_TRACE_STREAM", "-5"),
    ])
    def test_bad_capture_env_exits_2(self, capsys, monkeypatch,
                                     variable, value):
        monkeypatch.setenv(variable, value)
        assert main(["fig6", "--budget", "15000"]) == 2
        assert variable in capsys.readouterr().err

    def test_bad_engine_flag_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--engine", "turbo"])

    def test_help_mentions_engine_knobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "REPRO_ENGINE" in out
        assert "REPRO_PROFILE" in out

    def test_profile_flag_emits_phase_lines(self, capsys, monkeypatch):
        from repro.runtime.profile import PROFILE_ENV

        monkeypatch.setenv(PROFILE_ENV, "1")
        assert main(["fig8", "--budget", "15000"]) == 0
        err = capsys.readouterr().err
        assert "[profile]" in err
        assert "engine=" in err
