"""CLI smoke tests (small budgets keep them fast)."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 18
        assert "compress" in out and "tomcatv" in out

    def test_table7(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "52.4 Kbits" in out

    def test_fig6_with_budget(self, capsys):
        assert main(["fig6", "--budget", "20000"]) == 0
        out = capsys.readouterr().out
        assert "blocked miss" in out

    def test_run_single_block(self, capsys):
        assert main(["run", "swim", "--budget", "20000",
                     "--blocks", "1", "--cache", "normal"]) == 0
        out = capsys.readouterr().out
        assert "IPC_f" in out

    def test_run_dual_block_double_selection(self, capsys):
        assert main(["run", "compress", "--budget", "20000",
                     "--selection", "double"]) == 0
        assert "IPC_f" in capsys.readouterr().out

    def test_run_multi_block(self, capsys):
        assert main(["run", "mgrid", "--budget", "20000",
                     "--blocks", "3"]) == 0
        assert "IPC_f" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_report_writes_markdown(self, capsys, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", "--budget", "15000",
                     "--output", str(out)]) == 0
        text = out.read_text()
        assert "Figure 6" in text
        assert "Table 7" in text
        assert "hardware cost" in text

    def test_run_with_btb_target(self, capsys):
        assert main(["run", "vortex", "--budget", "15000",
                     "--target", "btb", "--target-entries", "32"]) == 0
        assert "IPC_f" in capsys.readouterr().out
