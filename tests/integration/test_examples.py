"""Every example script must run end-to-end (tiny budgets via argv)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py", ["swim", "20000"])
        out = capsys.readouterr().out
        assert "dual-block speedup" in out

    def test_quickstart_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_example("quickstart.py", ["quake", "1000"])

    def test_custom_workload(self, capsys):
        run_example("custom_workload.py", [])
        out = capsys.readouterr().out
        assert "scalar two-level" in out
        assert "blocked PHT" in out

    def test_design_space(self, capsys):
        run_example("design_space.py", ["fp", "15000"])
        out = capsys.readouterr().out
        assert "best IPC_f" in out

    def test_design_space_rejects_bad_suite(self):
        with pytest.raises(SystemExit):
            run_example("design_space.py", ["both"])

    def test_interpreter_dispatch(self, capsys):
        run_example("interpreter_dispatch.py", [])
        out = capsys.readouterr().out
        assert "takeaway" in out

    def test_fig9_chart(self, capsys):
        run_example("fig9_chart.py", ["15000"])
        out = capsys.readouterr().out
        assert "legend" in out
        assert out.count("|") >= 18  # one bar per program

    def test_issue_buffer(self, capsys):
        run_example("issue_buffer.py", ["20000"])
        out = capsys.readouterr().out
        assert "issued IPC" in out
        assert "starved" in out
