"""Engine reuse semantics: tables persist across runs (warm state)."""

from repro.core import DualBlockEngine, EngineConfig, SingleBlockEngine
from repro.icache import CacheGeometry
from repro.workloads import load_fetch_input

GEO = CacheGeometry.normal(8)


class TestWarmEngines:
    def test_second_run_is_not_worse(self):
        """Predictor tables persist across run() calls, so replaying the
        same workload on a warm engine cannot pay more cold misses."""
        fi = load_fetch_input("compress", GEO, 40_000)
        engine = DualBlockEngine(EngineConfig(geometry=GEO,
                                              n_select_tables=8))
        cold = engine.run(fi)
        warm = engine.run(fi)
        assert warm.penalty_cycles <= cold.penalty_cycles
        assert warm.base_cycles == cold.base_cycles

    def test_single_block_warm_run(self):
        fi = load_fetch_input("swim", GEO, 40_000)
        engine = SingleBlockEngine(EngineConfig(geometry=GEO))
        cold = engine.run(fi)
        warm = engine.run(fi)
        assert warm.penalty_cycles <= cold.penalty_cycles

    def test_fresh_engines_are_independent(self):
        fi = load_fetch_input("go", GEO, 40_000)
        config = EngineConfig(geometry=GEO)
        a = SingleBlockEngine(config).run(fi)
        b = SingleBlockEngine(config).run(fi)
        assert a.event_cycles == b.event_cycles
