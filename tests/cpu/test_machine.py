"""Interpreter semantics: arithmetic, memory, control flow, trace capture."""

import pytest

from repro.cpu import Machine, MachineError, run_program
from repro.isa import Assembler, InstrKind


def asm_program(body, data_size=64):
    asm = Assembler()
    body(asm)
    return asm.assemble(data_size=data_size)


def run(body, data_size=64, max_instructions=100_000):
    prog = asm_program(body, data_size)
    machine = Machine(prog)
    result = machine.run(max_instructions=max_instructions)
    return machine, result


class TestALU:
    def test_add_sub(self):
        def body(a):
            a.li("r3", 7)
            a.li("r4", 5)
            a.add("r5", "r3", "r4")
            a.sub("r6", "r3", "r4")
            a.halt()
        machine, _ = run(body)
        assert machine.regs[5] == 12
        assert machine.regs[6] == 2

    def test_mul_wraps_to_64_bits(self):
        def body(a):
            a.li("r3", 1 << 62)
            a.li("r4", 4)
            a.mul("r5", "r3", "r4")
            a.halt()
        machine, _ = run(body)
        assert machine.regs[5] == 0

    def test_div_truncates_toward_zero(self):
        def body(a):
            a.li("r3", -7)
            a.li("r4", 2)
            a.div("r5", "r3", "r4")
            a.mod("r6", "r3", "r4")
            a.halt()
        machine, _ = run(body)
        assert machine.regs[5] == -3  # C semantics, not Python floor
        assert machine.regs[6] == -1

    def test_div_by_zero_raises(self):
        def body(a):
            a.li("r3", 1)
            a.div("r4", "r3", "r0")
            a.halt()
        with pytest.raises(MachineError):
            run(body)

    def test_logic_and_shifts(self):
        def body(a):
            a.li("r3", 0b1100)
            a.li("r4", 0b1010)
            a.and_("r5", "r3", "r4")
            a.or_("r6", "r3", "r4")
            a.xor("r7", "r3", "r4")
            a.slli("r8", "r3", 2)
            a.srli("r9", "r3", 2)
            a.halt()
        machine, _ = run(body)
        assert machine.regs[5] == 0b1000
        assert machine.regs[6] == 0b1110
        assert machine.regs[7] == 0b0110
        assert machine.regs[8] == 0b110000
        assert machine.regs[9] == 0b11

    def test_srl_is_logical_on_negatives(self):
        def body(a):
            a.li("r3", -1)
            a.srli("r4", "r3", 60)
            a.halt()
        machine, _ = run(body)
        assert machine.regs[4] == 15

    def test_slt_seq(self):
        def body(a):
            a.li("r3", 3)
            a.li("r4", 4)
            a.slt("r5", "r3", "r4")
            a.slt("r6", "r4", "r3")
            a.seq("r7", "r3", "r3")
            a.slti("r8", "r3", 10)
            a.halt()
        machine, _ = run(body)
        assert machine.regs[5] == 1
        assert machine.regs[6] == 0
        assert machine.regs[7] == 1
        assert machine.regs[8] == 1

    def test_r0_is_hardwired_zero(self):
        def body(a):
            a.li("r0", 99)
            a.addi("r0", "r0", 5)
            a.add("r3", "r0", "r0")
            a.halt()
        machine, _ = run(body)
        assert machine.regs[0] == 0
        assert machine.regs[3] == 0


class TestMemory:
    def test_load_store_roundtrip(self):
        def body(a):
            a.li("r3", 10)
            a.li("r4", 1234)
            a.st("r4", "r3", 5)
            a.ld("r5", "r3", 5)
            a.halt()
        machine, _ = run(body)
        assert machine.mem[15] == 1234
        assert machine.regs[5] == 1234

    def test_load_out_of_range_raises(self):
        def body(a):
            a.li("r3", 1000)
            a.ld("r4", "r3", 0)
            a.halt()
        with pytest.raises(MachineError):
            run(body, data_size=64)

    def test_store_negative_address_raises(self):
        def body(a):
            a.li("r3", -1)
            a.st("r3", "r3", 0)
            a.halt()
        with pytest.raises(MachineError):
            run(body)


class TestControlFlow:
    def test_loop_counts(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 10)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        machine, _ = run(body)
        assert machine.regs[3] == 10

    def test_call_and_return(self):
        def body(a):
            a.jal("f")
            a.halt()
            a.label("f")
            a.li("r3", 42)
            a.ret()
        machine, _ = run(body)
        assert machine.regs[3] == 42

    def test_indirect_jump(self):
        def body(a):
            a.li("r3", 3)
            a.jr("r3")
            a.li("r4", 1)  # skipped
            a.halt()
        machine, result = run(body)
        assert machine.regs[4] == 0
        assert result.halted

    def test_jalr_sets_link(self):
        def body(a):
            a.li("r3", 4)
            a.jalr("r3")
            a.halt()          # return lands here
            a.nop()
            a.label("f")
            a.ret()
        machine, result = run(body)
        assert result.halted

    def test_bad_indirect_target_raises(self):
        def body(a):
            a.li("r3", 999)
            a.jr("r3")
            a.halt()
        with pytest.raises(MachineError):
            run(body)


class TestTraceCapture:
    def test_trace_kinds_and_targets(self):
        def body(a):
            a.li("r3", 0)         # 0
            a.label("top")        # 1
            a.addi("r3", "r3", 1)  # 1
            a.blt("r3", "r4", "top")  # 2 (not taken: r4 == 0)
            a.jal("f")            # 3
            a.halt()              # 4
            a.label("f")          # 5
            a.ret()               # 5
        _, result = run(body)
        trace = result.trace
        kinds = [int(k) for k in trace.kind]
        assert kinds == [
            int(InstrKind.COND),
            int(InstrKind.CALL),
            int(InstrKind.RETURN),
            int(InstrKind.HALT),
        ]
        assert not trace.taken[0]
        assert trace.taken[1] and trace.target[1] == 5
        assert trace.target[2] == 4

    def test_instruction_count_exact(self):
        def body(a):
            a.li("r3", 0)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.li("r4", 3)
            a.blt("r3", "r4", "top")
            a.halt()
        _, result = run(body)
        # li + 3*(addi+li+blt) + halt = 11
        assert result.instructions == 11
        assert result.trace.n_instructions == 11

    def test_truncation_synthesises_halt(self):
        def body(a):
            a.label("spin")
            a.j("spin")
        prog = asm_program(body)
        result = Machine(prog).run(max_instructions=50)
        assert not result.halted
        assert result.trace.truncated
        assert int(result.trace.kind[-1]) == int(InstrKind.HALT)
        assert result.trace.n_instructions == 51  # 50 executed + marker

    def test_cond_taken_rate_visible(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 5)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        _, result = run(body)
        trace = result.trace
        conds = trace.cond_mask
        assert conds.sum() == 5
        assert trace.taken[conds].sum() == 4  # last iteration falls through

    def test_run_program_helper(self):
        def body(a):
            a.halt()
        trace = run_program(asm_program(body))
        assert trace.n_instructions == 1
