"""Capture parity: the tiered fast tracer vs the reference interpreter.

The scalar :class:`~repro.cpu.machine.Machine` is ground truth; the
vectorized :class:`~repro.cpu.fast.FastMachine` must reproduce it
bit-for-bit — every trace record, the run counters, and the full
architectural end state.  The suite sweeps every registered workload at
a 10^5-instruction budget and then pins the arithmetic corners the
vector tier is most likely to get wrong (64-bit wrap, C-style division
truncation, shift-amount masking, logical-shift of negatives).
"""

import numpy as np
import pytest

from repro.cpu import FastMachine, Machine
from repro.isa import ProgramBuilder
from repro.workloads.registry import REGISTRY, workload_names

PARITY_BUDGET = 100_000


def assert_capture_parity(program, budget):
    """Run both tracers and compare everything observable."""
    scalar = Machine(program)
    fast = FastMachine(program)
    s_res = scalar.run(max_instructions=budget)
    f_res = fast.run(max_instructions=budget)

    assert f_res.instructions == s_res.instructions
    assert f_res.halted == s_res.halted
    s_tr, f_tr = s_res.trace, f_res.trace
    assert (f_tr.entry_pc, f_tr.n_instructions, f_tr.truncated) == \
        (s_tr.entry_pc, s_tr.n_instructions, s_tr.truncated)
    for field in ("pc", "kind", "taken", "target"):
        a = np.asarray(getattr(s_tr, field))
        b = np.asarray(getattr(f_tr, field))
        if not np.array_equal(a, b):
            first = int(np.flatnonzero(a != b)[0])
            pytest.fail(f"trace.{field} diverges at record {first}: "
                        f"scalar {a[first]} vs fast {b[first]}")

    assert list(fast.regs) == list(scalar.regs)
    hi = fast.hi_mem
    for addr, expected in enumerate(scalar.mem):
        actual = hi.get(addr)
        if actual is None:
            actual = int(fast.mem[addr])
        assert actual == expected, \
            f"mem[{addr}]: scalar {expected} vs fast {actual}"
    return s_res, f_res


class TestWorkloadParity:
    """Every registered analog, both suites plus extras, at 10^5."""

    @pytest.mark.parametrize("name", workload_names())
    def test_capture_parity(self, name):
        program = REGISTRY.program(name)
        s_res, _f_res = assert_capture_parity(program, PARITY_BUDGET)
        assert s_res.instructions >= PARITY_BUDGET or s_res.halted


def _run_pair(build):
    """Build, run both tracers to HALT, return them after parity."""
    program = build()
    assert_capture_parity(program, 100_000)
    machine = FastMachine(program)
    result = machine.run(max_instructions=100_000)
    assert result.halted
    return machine


class TestArithmeticCorners:
    def test_int64_wraparound(self):
        def build():
            b = ProgramBuilder(name="wrap")
            with b.function("main"):
                b.asm.li("r3", 1)
                b.asm.slli("r3", "r3", 62)
                with b.for_range("r5", 0, 8):
                    b.asm.add("r3", "r3", "r3")   # overflow wraps
                    b.asm.addi("r3", "r3", 3)
                b.asm.li("r4", 0x7FFF)
                b.asm.mul("r4", "r4", "r3")       # wrapped multiply
            return b.build()

        machine = _run_pair(build)
        assert machine.regs[3] == machine.regs[3] & ((1 << 64) - 1) \
            - (1 << 64) if machine.regs[3] < 0 else True
        assert -(1 << 63) <= machine.regs[3] < (1 << 63)
        assert -(1 << 63) <= machine.regs[4] < (1 << 63)

    def test_div_mod_truncate_toward_zero(self):
        def build():
            b = ProgramBuilder(name="divmod")
            with b.function("main"):
                b.asm.li("r3", 7)
                b.asm.li("r4", 2)
                b.asm.sub("r5", "r0", "r3")       # -7
                b.asm.sub("r6", "r0", "r4")       # -2
                b.asm.div("r7", "r5", "r4")       # -7 / 2
                b.asm.mod("r8", "r5", "r4")       # -7 % 2
                b.asm.div("r9", "r3", "r6")       # 7 / -2
                b.asm.mod("r10", "r3", "r6")      # 7 % -2
                b.asm.div("r11", "r5", "r6")      # -7 / -2
                b.asm.mod("r12", "r5", "r6")      # -7 % -2
            return b.build()

        machine = _run_pair(build)
        # C semantics: quotient truncates toward zero, remainder keeps
        # the dividend's sign — unlike Python's floor division.
        assert machine.regs[7] == -3 and machine.regs[8] == -1
        assert machine.regs[9] == -3 and machine.regs[10] == 1
        assert machine.regs[11] == 3 and machine.regs[12] == -1

    def test_shift_amounts_mask_to_six_bits(self):
        def build():
            b = ProgramBuilder(name="shifts")
            with b.function("main"):
                b.asm.li("r3", 5)
                b.asm.li("r4", 64)                # masks to 0
                b.asm.sll("r5", "r3", "r4")
                b.asm.srl("r6", "r3", "r4")
                b.asm.li("r4", 65)                # masks to 1
                b.asm.sll("r7", "r3", "r4")
                b.asm.srl("r8", "r3", "r4")
            return b.build()

        machine = _run_pair(build)
        assert machine.regs[5] == 5 and machine.regs[6] == 5
        assert machine.regs[7] == 10 and machine.regs[8] == 2

    def test_srl_of_negative_is_logical(self):
        def build():
            b = ProgramBuilder(name="srlneg")
            with b.function("main"):
                b.asm.li("r3", 1)
                b.asm.sub("r3", "r0", "r3")       # -1
                b.asm.li("r4", 1)
                b.asm.srl("r5", "r3", "r4")       # 2^63 - 1
                b.asm.li("r6", 0)
                b.asm.srl("r7", "r3", "r6")       # srl by 0: 2^64 - 1
                b.asm.li("r8", 100)
                b.asm.st("r7", "r8", 0)           # wide value to memory
                b.asm.ld("r9", "r8", 0)           # and back
            return b.build()

        machine = _run_pair(build)
        assert machine.regs[5] == (1 << 63) - 1
        # srl-by-0 reinterprets the negative as unsigned without
        # re-wrapping — the documented scalar semantics the fast tier's
        # wide-value overlay exists to preserve.
        assert machine.regs[7] == (1 << 64) - 1
        assert machine.regs[9] == (1 << 64) - 1
        assert machine.hi_mem.get(100) == (1 << 64) - 1


class TestStreamingCapture:
    def test_run_streaming_matches_run(self):
        program = REGISTRY.program("compress")
        reference = FastMachine(program).run(max_instructions=20_000)

        parts = []

        def sink(pc, kind, taken, target):
            parts.append((pc.copy(), kind.copy(), taken.copy(),
                          target.copy()))
            return len(parts)

        executed, halted, truncated = FastMachine(program).run_streaming(
            sink, max_instructions=20_000, flush_records=1024)
        assert executed == reference.instructions
        assert halted == reference.halted
        assert truncated == reference.trace.truncated
        for i, field in enumerate(("pc", "kind", "taken", "target")):
            streamed = np.concatenate([p[i] for p in parts])
            np.testing.assert_array_equal(
                streamed, getattr(reference.trace, field))

    def test_flush_bounds_segment_size(self):
        program = REGISTRY.program("compress")
        sizes = []

        def sink(pc, _kind, _taken, _target):
            sizes.append(len(pc))

        FastMachine(program).run_streaming(sink,
                                           max_instructions=20_000,
                                           flush_records=512)
        assert len(sizes) > 1
        # Each flush carries at most one over-full buffer: the bound is
        # flush_records plus one stepper batch, never the whole trace.
        assert sum(sizes) > 512
