"""Trace statistics: counts and rendering."""

from repro.cpu import Machine
from repro.isa import Assembler
from repro.trace import trace_stats


def loop_trace(iterations=10):
    asm = Assembler()
    asm.li("r3", 0)
    asm.li("r4", iterations)
    asm.label("top")
    asm.addi("r3", "r3", 1)
    asm.jal("noop")
    asm.blt("r3", "r4", "top")
    asm.halt()
    asm.label("noop")
    asm.ret()
    return Machine(asm.assemble(name="loopy")).run().trace


class TestTraceStats:
    def test_counts(self):
        stats = trace_stats(loop_trace(10))
        assert stats.n_cond == 10
        assert stats.kind_counts["call"] == 10
        assert stats.kind_counts["return"] == 10
        assert stats.kind_counts["halt"] == 1
        assert stats.n_branches == 30  # 10 each of cond/call/return

    def test_rates(self):
        stats = trace_stats(loop_trace(10))
        assert stats.cond_taken_rate == 0.9  # last iteration falls through
        assert 0 < stats.branch_density < 1
        assert stats.avg_basic_block > 1

    def test_str_rendering(self):
        text = str(trace_stats(loop_trace(5)))
        assert "loopy" in text
        assert "instructions" in text
        assert "cond" in text
        assert "taken" in text

    def test_counts_sum_to_records(self):
        trace = loop_trace(7)
        stats = trace_stats(trace)
        assert sum(stats.kind_counts.values()) == trace.n_records
