"""Chunked trace containers: round-trip, streaming parity, versioning."""

import json
import zipfile

import numpy as np
import pytest

from repro.cpu import FastMachine, Machine
from repro.icache import CacheGeometry
from repro.trace.blocks import segment_blocks
from repro.trace.chunks import (
    CHUNK_ENV,
    DEFAULT_CHUNK_RECORDS,
    ChunkedTrace,
    TraceChunkWriter,
    chunk_records,
)
from repro.trace.record import CAPTURE_VERSION
from repro.workloads.registry import REGISTRY

BUDGET = 30_000
PER_CHUNK = 1024


@pytest.fixture(scope="module")
def reference():
    """A materialised compress trace small enough to inspect fully."""
    program = REGISTRY.program("compress")
    return program, Machine(program).run(max_instructions=BUDGET).trace


@pytest.fixture(scope="module")
def container(reference, tmp_path_factory):
    """The same capture streamed into a chunk container."""
    program, trace = reference
    path = tmp_path_factory.mktemp("chunks") / "compress.chunks"
    with TraceChunkWriter(path, entry_pc=program.entry, name="compress",
                          records_per_chunk=PER_CHUNK) as writer:
        executed, halted, truncated = FastMachine(program).run_streaming(
            writer, max_instructions=BUDGET, flush_records=PER_CHUNK)
        writer.close(executed, truncated=truncated)
    assert trace.n_instructions == executed
    return path


class TestRoundTrip:
    def test_metadata_matches(self, reference, container):
        _program, trace = reference
        with ChunkedTrace(container) as chunked:
            assert chunked.entry_pc == trace.entry_pc
            assert chunked.n_instructions == trace.n_instructions
            assert chunked.truncated == trace.truncated
            assert chunked.name == "compress"
            assert chunked.n_records == len(trace.pc)
            assert chunked.n_branches == len(trace.pc) - 1
            assert chunked.n_chunks > 1

    def test_chunks_partition_the_records(self, reference, container):
        _program, trace = reference
        with ChunkedTrace(container) as chunked:
            for i, field in enumerate(("pc", "kind", "taken", "target")):
                streamed = np.concatenate(
                    [chunk[i] for chunk in chunked.iter_chunks()])
                np.testing.assert_array_equal(streamed,
                                              getattr(trace, field))

    def test_every_chunk_is_bounded(self, container):
        with ChunkedTrace(container) as chunked:
            sizes = [chunk[0].shape[0]
                     for chunk in chunked.iter_chunks()]
            assert all(s == PER_CHUNK for s in sizes[:-1])
            assert 0 < sizes[-1] <= PER_CHUNK

    def test_lazy_materialisation_matches(self, reference, container):
        _program, trace = reference
        with ChunkedTrace(container) as chunked:
            np.testing.assert_array_equal(chunked.pc, trace.pc)
            np.testing.assert_array_equal(chunked.cond_mask,
                                          trace.cond_mask)
            full = chunked.materialize()
            assert full.n_instructions == trace.n_instructions
            np.testing.assert_array_equal(full.target, trace.target)

    def test_cond_stream_matches_materialised_derivation(
            self, reference, container):
        _program, trace = reference
        with ChunkedTrace(container) as chunked:
            prefix, cond_pc, cond_taken = chunked.cond_stream()
            mask = trace.cond_mask
            expected_prefix = np.zeros(len(trace.pc) + 1, dtype=np.int64)
            np.cumsum(mask, out=expected_prefix[1:])
            np.testing.assert_array_equal(prefix, expected_prefix)
            np.testing.assert_array_equal(cond_pc, trace.pc[mask])
            np.testing.assert_array_equal(cond_taken, trace.taken[mask])
            assert chunked.n_cond == int(mask.sum())

    def test_segmentation_parity(self, reference, container):
        _program, trace = reference
        geometry = CacheGeometry.normal(8)
        expected = segment_blocks(trace, geometry)
        with ChunkedTrace(container) as chunked:
            streamed = segment_blocks(chunked, geometry)
        for field in ("start", "n_instr", "exit_kind", "exit_target",
                      "first_rec", "n_recs"):
            np.testing.assert_array_equal(getattr(streamed, field),
                                          getattr(expected, field))


class TestWriterContract:
    def _records(self, trace):
        return (np.asarray(trace.pc), np.asarray(trace.kind),
                np.asarray(trace.taken), np.asarray(trace.target))

    def test_abort_on_exit_leaves_nothing(self, reference, tmp_path):
        _program, trace = reference
        path = tmp_path / "aborted.chunks"
        with TraceChunkWriter(path, entry_pc=0) as writer:
            writer(*self._records(trace))
        assert not path.exists()
        assert not list(tmp_path.iterdir())

    def test_close_requires_halt_terminated_stream(self, reference,
                                                   tmp_path):
        _program, trace = reference
        path = tmp_path / "torn.chunks"
        pc, kind, taken, target = self._records(trace)
        writer = TraceChunkWriter(path, entry_pc=0)
        writer(pc[:-1], kind[:-1], taken[:-1], target[:-1])
        with pytest.raises(ValueError, match="HALT"):
            writer.close(trace.n_instructions)
        assert not path.exists()

    def test_close_rejects_empty_capture(self, tmp_path):
        writer = TraceChunkWriter(tmp_path / "empty.chunks", entry_pc=0)
        with pytest.raises(ValueError, match="at least"):
            writer.close(0)

    def test_mismatched_segment_lengths_rejected(self, reference,
                                                 tmp_path):
        _program, trace = reference
        pc, kind, taken, target = self._records(trace)
        with TraceChunkWriter(tmp_path / "bad.chunks", entry_pc=0) as w:
            with pytest.raises(ValueError, match="equal length"):
                w(pc, kind[:-1], taken, target)


class TestDurability:
    def _records(self, trace):
        return (np.asarray(trace.pc), np.asarray(trace.kind),
                np.asarray(trace.taken), np.asarray(trace.target))

    def test_close_fsyncs_container_before_rename(self, reference,
                                                  tmp_path, monkeypatch):
        import os

        _program, trace = reference
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append("fsync")
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        path = tmp_path / "durable.chunks"
        writer = TraceChunkWriter(path, entry_pc=0,
                                  records_per_chunk=PER_CHUNK)
        writer(*self._records(trace))
        writer.close(trace.n_instructions)
        assert path.exists()
        assert "replace" in events
        # The file's bytes reach disk before the rename publishes them.
        assert events.index("fsync") < events.index("replace")

    def test_torn_container_is_quarantined_on_next_read(
            self, container, tmp_path, monkeypatch):
        from repro.runtime import cache

        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        digest = "deadbeefdeadbeef"
        dest = cache.chunked_trace_path("compress", BUDGET, digest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        data = container.read_bytes()
        # A capture killed mid-write (without the fsync-before-rename
        # discipline) leaves a prefix of the container behind.
        dest.write_bytes(data[:len(data) // 2])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load_chunked_trace("compress", BUDGET,
                                            digest) is None
        assert not dest.exists()
        quarantined = list((tmp_path / cache.QUARANTINE_DIR).iterdir())
        assert [p.name for p in quarantined] == [dest.name]

    def test_abandoned_tmp_file_is_a_clean_miss(self, tmp_path,
                                                monkeypatch):
        import os
        import warnings

        from repro.runtime import cache

        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
        digest = "deadbeefdeadbeef"
        dest = cache.chunked_trace_path("compress", BUDGET, digest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        tmp = dest.with_name(f".{dest.name}.{os.getpid()}.tmp")
        tmp.write_bytes(b"partial capture, never renamed")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load_chunked_trace("compress", BUDGET,
                                            digest) is None
        assert tmp.exists()  # left for post-mortems, never opened


class TestVersioning:
    def test_stale_version_rejected(self, container, tmp_path):
        stale = tmp_path / "stale.chunks"
        with zipfile.ZipFile(container) as src, \
                zipfile.ZipFile(stale, "w") as dst:
            for member in src.namelist():
                data = src.read(member)
                if member == "meta.json":
                    meta = json.loads(data)
                    meta["capture_version"] = CAPTURE_VERSION - 1
                    data = json.dumps(meta).encode()
                dst.writestr(member, data)
        with pytest.raises(ValueError, match="capture version"):
            ChunkedTrace(stale)

    def test_non_container_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.chunks"
        with zipfile.ZipFile(bogus, "w") as zf:
            zf.writestr("unrelated.txt", "nope")
        with pytest.raises(ValueError, match="not a chunked trace"):
            ChunkedTrace(bogus)


class TestChunkKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(CHUNK_ENV, raising=False)
        assert chunk_records() == DEFAULT_CHUNK_RECORDS

    def test_override(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "4096")
        assert chunk_records() == 4096

    @pytest.mark.parametrize("bad", ["zero", "0", "-5", "1.5"])
    def test_invalid_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(CHUNK_ENV, bad)
        with pytest.raises(ValueError, match=CHUNK_ENV):
            chunk_records()
