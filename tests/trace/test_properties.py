"""Property-based tests over traces and block segmentation.

Random (but valid) programs are generated via the synthetic generator and
executed; the resulting traces must satisfy structural invariants under
every cache geometry.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cpu import Machine
from repro.icache.geometry import CacheGeometry
from repro.isa import InstrKind
from repro.trace import (
    EXIT_FALLTHROUGH,
    SyntheticSpec,
    segment_blocks,
    synthetic_program,
    trace_stats,
)

K_HALT = int(InstrKind.HALT)

specs = st.builds(
    SyntheticSpec,
    seed=st.integers(0, 10_000),
    n_functions=st.integers(0, 4),
    loop_depth=st.integers(1, 3),
    irregularity=st.floats(0.0, 1.0),
    body_ops=st.integers(1, 8),
    iterations=st.integers(2, 16),
)

geometries = st.sampled_from([
    CacheGeometry.normal(8),
    CacheGeometry.normal(4),
    CacheGeometry.extended(8),
    CacheGeometry.self_aligned(8),
    CacheGeometry(kind="extended", block_width=4, line_size=8, n_banks=8),
])


def run_spec(spec, budget=40_000):
    return Machine(synthetic_program(spec)).run(max_instructions=budget).trace


@settings(max_examples=25, deadline=None)
@given(spec=specs)
def test_trace_is_well_formed(spec):
    trace = run_spec(spec)
    assert int(trace.kind[-1]) == K_HALT
    # Records strictly follow execution order within sequential runs:
    # each record's pc is reachable from the previous target/fall-through.
    prev_next = trace.entry_pc
    for pc, kind, taken, target in trace.records():
        assert pc >= prev_next, "records must not precede the fetch point"
        prev_next = target if taken else pc + 1
    # Instruction count equals the sum of sequential run lengths.
    total = 0
    prev_next = trace.entry_pc
    for pc, kind, taken, target in trace.records():
        total += pc - prev_next + 1
        prev_next = target if taken else pc + 1
    assert total == trace.n_instructions


@settings(max_examples=25, deadline=None)
@given(spec=specs, geo=geometries)
def test_segmentation_invariants(spec, geo):
    trace = run_spec(spec)
    bs = segment_blocks(trace, geo)
    # Conservation: blocks cover every executed instruction exactly once.
    assert bs.instructions == trace.n_instructions
    # Geometry: no block exceeds its limit.
    for i in range(bs.n_blocks):
        start = int(bs.start[i])
        n = int(bs.n_instr[i])
        assert 1 <= n <= geo.block_limit(start)
    # Record windows partition the record array.
    assert bs.first_rec[0] == 0
    ends = bs.first_rec + bs.n_recs
    assert list(ends[:-1]) == list(bs.first_rec[1:])
    assert ends[-1] == trace.n_records
    # Chain property: each block's exit target is the next block's start.
    for i in range(bs.n_blocks - 1):
        assert bs.exit_target[i] == bs.start[i + 1]
    # Fall-through blocks fill the geometry limit exactly.
    for i in range(bs.n_blocks):
        if bs.exit_kind[i] == EXIT_FALLTHROUGH:
            assert bs.n_instr[i] == geo.block_limit(int(bs.start[i]))
    # The last block ends in HALT.
    assert bs.exit_kind[-1] == K_HALT


@settings(max_examples=15, deadline=None)
@given(spec=specs)
def test_stats_are_consistent(spec):
    trace = run_spec(spec)
    stats = trace_stats(trace)
    assert stats.n_instructions == trace.n_instructions
    assert stats.n_branches == trace.n_branches
    assert 0.0 <= stats.cond_taken_rate <= 1.0
    assert 0.0 <= stats.branch_density <= 1.0
    assert sum(stats.kind_counts.values()) == trace.n_records


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_synthetic_is_deterministic(seed):
    spec = SyntheticSpec(seed=seed)
    t1 = run_spec(spec, budget=5_000)
    t2 = run_spec(spec, budget=5_000)
    np.testing.assert_array_equal(t1.pc, t2.pc)
    np.testing.assert_array_equal(t1.taken, t2.taken)
    assert t1.n_instructions == t2.n_instructions
