"""Trace container tests: validation, masks, persistence."""

import numpy as np
import pytest

from repro.isa import InstrKind
from repro.trace import Trace

K_COND = int(InstrKind.COND)
K_JUMP = int(InstrKind.JUMP)
K_HALT = int(InstrKind.HALT)


def tiny_trace(name="t"):
    return Trace.from_lists(
        entry_pc=0,
        n_instructions=12,
        pc=[3, 7, 11],
        kind=[K_COND, K_JUMP, K_HALT],
        taken=[False, True, False],
        target=[0, 10, 12],
        name=name,
    )


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_lists(0, 5, [1, 2], [K_HALT], [False], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_lists(0, 0, [], [], [], [])

    def test_must_end_with_halt(self):
        with pytest.raises(ValueError):
            Trace.from_lists(0, 5, [3], [K_COND], [True], [0])


class TestAccessors:
    def test_counts(self):
        t = tiny_trace()
        assert len(t) == 3
        assert t.n_records == 3
        assert t.n_branches == 2
        assert t.n_cond == 1

    def test_cond_mask(self):
        t = tiny_trace()
        assert list(t.cond_mask) == [True, False, False]

    def test_records_iteration(self):
        t = tiny_trace()
        recs = list(t.records())
        assert recs[0] == (3, K_COND, False, 0)
        assert recs[1] == (7, K_JUMP, True, 10)
        assert recs[2][1] == K_HALT

    def test_dtypes(self):
        t = tiny_trace()
        assert t.pc.dtype == np.int64
        assert t.kind.dtype == np.uint8
        assert t.taken.dtype == bool


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = tiny_trace(name="roundtrip")
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.entry_pc == t.entry_pc
        assert loaded.n_instructions == t.n_instructions
        assert loaded.name == "roundtrip"
        assert loaded.truncated == t.truncated
        np.testing.assert_array_equal(loaded.pc, t.pc)
        np.testing.assert_array_equal(loaded.kind, t.kind)
        np.testing.assert_array_equal(loaded.taken, t.taken)
        np.testing.assert_array_equal(loaded.target, t.target)

    def test_roundtrip_preserves_dtypes_and_counts(self, tmp_path):
        t = tiny_trace()
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.pc.dtype == np.int64
        assert loaded.kind.dtype == np.uint8
        assert loaded.taken.dtype == bool
        assert loaded.target.dtype == np.int64
        assert loaded.n_records == t.n_records
        assert loaded.n_branches == t.n_branches
        assert loaded.n_cond == t.n_cond

    def test_roundtrip_preserves_truncated_flag(self, tmp_path):
        t = Trace.from_lists(0, 12, [3], [K_HALT], [False], [12],
                             truncated=True)
        path = tmp_path / "trace.npz"
        t.save(path)
        assert Trace.load(path).truncated is True
