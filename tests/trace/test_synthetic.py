"""Synthetic program generator: parameters shape the traces as promised."""

from repro.cpu import Machine
from repro.predictors import ScalarPHT, evaluate_scalar_direction
from repro.trace import SyntheticSpec, synthetic_program, trace_stats


def run(spec, budget=30_000):
    return Machine(synthetic_program(spec)).run(
        max_instructions=budget).trace


class TestIrregularityKnob:
    def test_irregular_programs_predict_worse(self):
        """High irregularity = data-dependent branches = worse accuracy;
        the knob that separates int-like from fp-like test traces."""
        def rate(irregularity):
            miss = cond = 0
            for seed in range(3):
                trace = run(SyntheticSpec(seed=seed,
                                          irregularity=irregularity))
                r = evaluate_scalar_direction(trace, ScalarPHT())
                miss += r.mispredicts
                cond += r.n_cond
            return miss / cond

        assert rate(0.9) > rate(0.05)

    def test_body_ops_lengthen_runs(self):
        short = trace_stats(run(SyntheticSpec(seed=1, body_ops=1)))
        long = trace_stats(run(SyntheticSpec(seed=1, body_ops=8)))
        assert long.avg_basic_block > short.avg_basic_block


class TestStructureKnobs:
    def test_functions_generate_calls(self):
        with_funcs = trace_stats(run(SyntheticSpec(seed=2, n_functions=3)))
        without = trace_stats(run(SyntheticSpec(seed=2, n_functions=0)))
        assert with_funcs.kind_counts.get("call", 0) > \
            without.kind_counts.get("call", 0)

    def test_programs_always_halt_within_reason(self):
        # Small iteration counts terminate well inside the budget.
        result = Machine(synthetic_program(
            SyntheticSpec(seed=3, iterations=2, loop_depth=1,
                          n_functions=0))).run(max_instructions=200_000)
        assert result.halted
