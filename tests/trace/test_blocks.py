"""Block segmentation tests: hand-built traces plus executed programs."""

import numpy as np
import pytest

from repro.cpu import Machine
from repro.icache.geometry import CacheGeometry
from repro.isa import Assembler, InstrKind
from repro.trace import EXIT_FALLTHROUGH, Trace, segment_blocks

K_COND = int(InstrKind.COND)
K_JUMP = int(InstrKind.JUMP)
K_CALL = int(InstrKind.CALL)
K_HALT = int(InstrKind.HALT)

GEO8 = CacheGeometry.normal(8)


def make_trace(entry, n, records):
    pcs, kinds, takens, targets = zip(*records)
    return Trace.from_lists(entry, n, list(pcs), list(kinds),
                            list(takens), list(targets))


class TestHandBuiltTraces:
    def test_straight_line_splits_at_line_boundaries(self):
        # 20 sequential instructions starting at 0, halt at pc 19.
        t = make_trace(0, 20, [(19, K_HALT, False, 20)])
        bs = segment_blocks(t, GEO8)
        assert list(bs.start) == [0, 8, 16]
        assert list(bs.n_instr) == [8, 8, 4]
        assert list(bs.exit_kind) == [EXIT_FALLTHROUGH, EXIT_FALLTHROUGH,
                                      K_HALT]

    def test_taken_branch_ends_block(self):
        # pc 0..3 then taken jump at 3 -> 16, halt at 16.
        t = make_trace(0, 5, [(3, K_JUMP, True, 16), (16, K_HALT, False, 17)])
        bs = segment_blocks(t, GEO8)
        assert list(bs.start) == [0, 16]
        assert list(bs.n_instr) == [4, 1]
        assert bs.exit_kind[0] == K_JUMP
        assert bs.exit_target[0] == 16

    def test_not_taken_cond_does_not_end_block(self):
        # Conditional at 2 not taken; halt at 6: one block of 7.
        t = make_trace(0, 7, [(2, K_COND, False, 30), (6, K_HALT, False, 7)])
        bs = segment_blocks(t, GEO8)
        assert bs.n_blocks == 1
        assert bs.n_instr[0] == 7
        assert bs.n_recs[0] == 2  # the cond and the halt

    def test_not_taken_cond_at_line_end(self):
        # Not-taken cond exactly at pc 7 (line end); falls through to 8.
        t = make_trace(0, 10, [(7, K_COND, False, 99), (9, K_HALT, False, 10)])
        bs = segment_blocks(t, GEO8)
        assert list(bs.start) == [0, 8]
        assert list(bs.n_instr) == [8, 2]
        assert bs.exit_kind[0] == EXIT_FALLTHROUGH
        assert bs.n_recs[0] == 1

    def test_misaligned_start_truncates_block(self):
        # Entry at 5: first block only spans 5..7 in a normal cache.
        t = make_trace(5, 10, [(14, K_HALT, False, 15)])
        bs = segment_blocks(t, GEO8)
        assert list(bs.start) == [5, 8]
        assert list(bs.n_instr) == [3, 7]

    def test_taken_branch_to_middle_of_line(self):
        t = make_trace(0, 4, [(0, K_JUMP, True, 13), (14, K_HALT, False, 15)])
        bs = segment_blocks(t, GEO8)
        assert list(bs.start) == [0, 13]
        assert list(bs.n_instr) == [1, 2]

    def test_extended_cache_reduces_truncation(self):
        geo = CacheGeometry.extended(8)  # line 16, block 8
        t = make_trace(5, 12, [(16, K_HALT, False, 17)])
        bs = segment_blocks(t, geo)
        # From 5, an extended line reaches 15, so a full 8-wide block fits;
        # the next block is cut at the line boundary (13..15), then 16.
        assert list(bs.start) == [5, 13, 16]
        assert list(bs.n_instr) == [8, 3, 1]

    def test_self_aligned_never_truncates(self):
        geo = CacheGeometry.self_aligned(8)
        t = make_trace(5, 16, [(20, K_HALT, False, 21)])
        bs = segment_blocks(t, geo)
        assert list(bs.start) == [5, 13]
        assert list(bs.n_instr) == [8, 8]

    def test_back_to_back_taken_branches(self):
        t = make_trace(0, 3, [(0, K_JUMP, True, 9), (9, K_JUMP, True, 20),
                              (20, K_HALT, False, 21)])
        bs = segment_blocks(t, GEO8)
        assert list(bs.start) == [0, 9, 20]
        assert list(bs.n_instr) == [1, 1, 1]

    def test_record_windows_partition_trace(self):
        t = make_trace(0, 20, [(2, K_COND, False, 9), (5, K_COND, True, 9),
                               (12, K_JUMP, True, 16),
                               (19, K_HALT, False, 20)])
        bs = segment_blocks(t, GEO8)
        # Windows are contiguous and cover every record exactly once.
        assert bs.first_rec[0] == 0
        for i in range(1, bs.n_blocks):
            assert bs.first_rec[i] == bs.first_rec[i - 1] + bs.n_recs[i - 1]
        assert bs.first_rec[-1] + bs.n_recs[-1] == t.n_records


class TestExecutedPrograms:
    def _trace(self, body):
        asm = Assembler()
        body(asm)
        return Machine(asm.assemble()).run().trace

    def test_loop_blocks(self):
        def body(a):
            a.li("r3", 0)        # 0
            a.li("r4", 3)        # 1
            a.label("top")       # 2
            a.addi("r3", "r3", 1)  # 2
            a.blt("r3", "r4", "top")  # 3
            a.halt()             # 4
        t = self._trace(body)
        bs = segment_blocks(t, GEO8)
        # Block 1: pc 0..3 (branch taken), then 2..3 twice, then 2..4 halt.
        assert list(bs.start) == [0, 2, 2]
        assert list(bs.n_instr) == [4, 2, 3]

    def test_instruction_conservation(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 50)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.addi("r5", "r5", 2)
            a.blt("r3", "r4", "top")
            a.halt()
        t = self._trace(body)
        for geo in (GEO8, CacheGeometry.extended(8),
                    CacheGeometry.self_aligned(8), CacheGeometry.normal(4)):
            bs = segment_blocks(t, geo)
            assert bs.instructions == t.n_instructions

    def test_block_width_cap(self):
        def body(a):
            for _ in range(30):
                a.nop()
            a.halt()
        t = self._trace(body)
        bs = segment_blocks(t, CacheGeometry(kind="normal", block_width=4,
                                             line_size=8, n_banks=8))
        assert bs.n_instr.max() <= 4


class TestGeometryValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(kind="weird")

    def test_line_smaller_than_block_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(kind="normal", block_width=8, line_size=4)

    def test_nonpositive_parameters_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(block_width=0)
        with pytest.raises(ValueError):
            CacheGeometry(line_size=0)
        with pytest.raises(ValueError):
            CacheGeometry(n_banks=0)

    def test_block_limit(self):
        assert GEO8.block_limit(0) == 8
        assert GEO8.block_limit(5) == 3
        assert CacheGeometry.extended(8).block_limit(5) == 8
        assert CacheGeometry.extended(8).block_limit(13) == 3
        assert CacheGeometry.self_aligned(8).block_limit(5) == 8

    def test_lines_for_block(self):
        assert GEO8.lines_for_block(8, 8) == (1,)
        assert CacheGeometry.self_aligned(8).lines_for_block(5, 8) == (0, 1)
        with pytest.raises(ValueError):
            GEO8.lines_for_block(5, 8)

    def test_counter_position_wraps(self):
        geo = CacheGeometry.extended(8)
        assert geo.counter_position(13) == 5

    def test_bank_of_line(self):
        assert GEO8.bank_of_line(9) == 1
        assert CacheGeometry.self_aligned(8).bank_of_line(17) == 1
