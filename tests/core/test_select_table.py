"""Select table tests: indexing, banks, cold behaviour, dual entries."""

import pytest

from repro.core import (
    DualSelectEntry,
    DualSelectTable,
    FALLTHROUGH_SELECTOR,
    SRC_ARRAY,
    SRC_RAS,
    SelectEntry,
    SelectTable,
)
from repro.predictors import BlockOutcomes


def entry(source=SRC_ARRAY, offset=3, n_nt=1, taken=True):
    return SelectEntry((source, offset, None), BlockOutcomes(n_nt, taken))


class TestSelectTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelectTable(history_length=0)
        with pytest.raises(ValueError):
            SelectTable(n_tables=0)

    def test_cold_read_is_fallthrough(self):
        st = SelectTable(history_length=4)
        stored = st.read(7, 0)
        assert stored.selector == FALLTHROUGH_SELECTOR
        assert stored.outcomes == BlockOutcomes(0, False)

    def test_write_read_roundtrip(self):
        st = SelectTable(history_length=4)
        e = entry()
        st.write(9, 16, e)
        assert st.read(9, 16) is e

    def test_index_masked(self):
        st = SelectTable(history_length=4)  # 16 entries
        e = entry()
        st.write(3 + 16, 0, e)
        assert st.read(3, 0) is e

    def test_multiple_tables_split_by_start_position(self):
        st = SelectTable(history_length=4, n_tables=2, line_size=8)
        even = entry(offset=0)
        odd = entry(offset=1)
        st.write(5, 8, even)   # position 0 -> table 0
        st.write(5, 9, odd)    # position 1 -> table 1
        assert st.read(5, 8) is even
        assert st.read(5, 9) is odd

    def test_single_table_aliases_start_positions(self):
        st = SelectTable(history_length=4, n_tables=1, line_size=8)
        st.write(5, 8, entry(offset=0))
        st.write(5, 9, entry(offset=1))
        assert st.read(5, 8).selector[1] == 1  # clobbered

    def test_storage_bits_matches_table7(self):
        # Default 1024 entries * 8 bits = 8 Kbits.
        assert SelectTable(history_length=10).storage_bits == 8 * 1024

    def test_eight_tables_grow_storage(self):
        assert SelectTable(history_length=10, n_tables=8).storage_bits == \
            8 * 8 * 1024


class TestDualSelectTable:
    def test_cold_read_defaults_both(self):
        st = DualSelectTable(history_length=4)
        stored = st.read(2, 0)
        assert stored.first.selector == FALLTHROUGH_SELECTOR
        assert stored.second.selector == FALLTHROUGH_SELECTOR

    def test_roundtrip(self):
        st = DualSelectTable(history_length=4)
        dual = DualSelectEntry(entry(SRC_RAS, 7), entry(SRC_ARRAY, 2))
        st.write(11, 24, dual)
        got = st.read(11, 24)
        assert got.first.selector == (SRC_RAS, 7, None)
        assert got.second.selector == (SRC_ARRAY, 2, None)

    def test_storage_doubles_single(self):
        single = SelectTable(history_length=10, n_tables=4)
        dual = DualSelectTable(history_length=10, n_tables=4)
        assert dual.storage_bits == 2 * single.storage_bits

    def test_banked_by_start_position(self):
        st = DualSelectTable(history_length=4, n_tables=2, line_size=8)
        a = DualSelectEntry(entry(offset=0), entry(offset=0))
        b = DualSelectEntry(entry(offset=1), entry(offset=1))
        st.write(5, 8, a)
        st.write(5, 9, b)
        assert st.read(5, 8) is a
        assert st.read(5, 9) is b
