"""Single-block engine behaviour on hand-crafted programs."""

import pytest

from repro.core import (
    EngineConfig,
    FetchInput,
    PenaltyKind,
    SingleBlockEngine,
    TARGET_BTB,
)
from repro.icache import CacheGeometry
from repro.isa import Assembler, ProgramBuilder

GEO = CacheGeometry.normal(8)


def fetch_input(build, geometry=GEO, max_instructions=500_000):
    asm = Assembler()
    build(asm)
    program = asm.assemble()
    return FetchInput.from_program(program, geometry, max_instructions)


def run(build, config=None, **cfg):
    fi = fetch_input(build, geometry=cfg.pop("geometry", GEO))
    config = config or EngineConfig(geometry=fi.geometry, **cfg)
    engine = SingleBlockEngine(config)
    return engine, engine.run(fi)


class TestBasics:
    def test_tight_loop_converges_to_low_penalties(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 500)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        _, stats = run(body)
        # Warmup: one NLS cold misfetch and up to two direction misses.
        assert stats.event_counts.get(PenaltyKind.COND, 0) <= 3
        assert stats.event_counts.get(PenaltyKind.MISFETCH_IMMEDIATE, 0) <= 2
        assert stats.ipc_f > 1.0

    def test_instruction_accounting(self):
        def body(a):
            for _ in range(20):
                a.nop()
            a.halt()
        _, stats = run(body)
        assert stats.n_instructions == 21
        assert stats.n_blocks == 3  # 8 + 8 + 5
        assert stats.base_cycles == 3

    def test_straight_line_has_no_penalties(self):
        def body(a):
            for _ in range(64):
                a.nop()
            a.halt()
        _, stats = run(body)
        assert stats.penalty_cycles == 0
        assert stats.ipc_f == pytest.approx(65 / 9)

    def test_geometry_mismatch_rejected(self):
        def body(a):
            a.halt()
        fi = fetch_input(body, geometry=GEO)
        engine = SingleBlockEngine(
            EngineConfig(geometry=CacheGeometry.extended(8)))
        with pytest.raises(ValueError):
            engine.run(fi)


class TestTargetPrediction:
    def test_jump_target_learned_after_one_misfetch(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 100)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.j("back")
            a.label("back")
            a.blt("r3", "r4", "top")
            a.halt()
        _, stats = run(body)
        # The direct jump misfetches once cold, then the NLS knows it.
        assert stats.event_counts.get(PenaltyKind.MISFETCH_IMMEDIATE, 0) <= 3
        assert stats.event_counts.get(PenaltyKind.MISFETCH_INDIRECT, 0) == 0

    def test_flipping_indirect_target_misfetches(self):
        # An indirect jump alternating between two targets defeats a
        # last-target array: every flip is an indirect misfetch.
        def body(a, addr_a, addr_b):
            a.li("r3", 0)
            a.li("r4", 100)
            a.label("top")
            a.andi("r5", "r3", 1)
            a.bne("r5", "r0", "pick_b")
            a.li("r8", addr_a)      # address of label target_a
            a.j("do_jump")
            a.label("pick_b")
            a.li("r8", addr_b)      # address of label target_b
            a.label("do_jump")
            a.jr("r8")
            a.label("target_a")
            a.j("join")
            a.label("target_b")
            a.nop()
            a.label("join")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        # Two-pass: assemble once with dummy addresses to learn the label
        # positions, then again with the real ones.
        probe = Assembler()
        body(probe, 0, 0)
        labels = probe.assemble().labels
        asm = Assembler()
        body(asm, labels["target_a"], labels["target_b"])
        program = asm.assemble()
        fi = FetchInput.from_program(program, GEO)
        stats = SingleBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        # The jr flips target every iteration: ~100 indirect misfetches.
        assert stats.event_counts.get(PenaltyKind.MISFETCH_INDIRECT, 0) >= 80

    def test_btb_variant_runs(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 50)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        _, stats = run(body, target_kind=TARGET_BTB, target_entries=32)
        assert stats.n_instructions > 0


class TestReturnPrediction:
    def test_balanced_calls_predict_returns(self):
        def build(b):
            with b.function("leaf", leaf=True):
                b.asm.nop()
            with b.function("main"):
                with b.for_range("r3", 0, 100):
                    b.call("leaf")
        b = ProgramBuilder()
        build(b)
        fi = FetchInput.from_program(b.build(), GEO)
        stats = SingleBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.event_counts.get(PenaltyKind.RETURN, 0) == 0

    def test_deep_recursion_overflows_ras(self):
        def build(b):
            with b.function("rec"):
                # r3 counts down; recurse while r3 > 0
                with b.if_("gt", "r3", "r0"):
                    b.asm.addi("r3", "r3", -1)
                    b.call("rec")
            with b.function("main"):
                b.asm.li("r3", 80)   # deeper than the 32-entry RAS
                b.call("rec")
        b = ProgramBuilder()
        build(b)
        fi = FetchInput.from_program(b.build(), GEO)
        stats = SingleBlockEngine(
            EngineConfig(geometry=GEO, ras_size=32)).run(fi)
        # Returns beyond the stack depth mispredict.
        assert stats.event_counts.get(PenaltyKind.RETURN, 0) >= 40

    def test_bigger_ras_fixes_it(self):
        def build(b):
            with b.function("rec"):
                with b.if_("gt", "r3", "r0"):
                    b.asm.addi("r3", "r3", -1)
                    b.call("rec")
            with b.function("main"):
                b.asm.li("r3", 80)
                b.call("rec")
        b = ProgramBuilder()
        build(b)
        fi = FetchInput.from_program(b.build(), GEO)
        stats = SingleBlockEngine(
            EngineConfig(geometry=GEO, ras_size=128)).run(fi)
        assert stats.event_counts.get(PenaltyKind.RETURN, 0) == 0


class TestBITTable:
    def _loopy(self, a):
        # Code spread across several lines so BIT entries alias.
        a.li("r3", 0)
        a.li("r4", 200)
        a.label("top")
        for _ in range(6):
            a.addi("r5", "r5", 1)
        a.jal("f")
        a.addi("r3", "r3", 1)
        a.blt("r3", "r4", "top")
        a.halt()
        a.label("f")
        for _ in range(6):
            a.addi("r6", "r6", 1)
        a.ret()

    def test_tiny_bit_table_pays_penalties(self):
        fi = fetch_input(self._loopy)
        stats = SingleBlockEngine(
            EngineConfig(geometry=GEO, bit_entries=1)).run(fi)
        assert stats.event_counts.get(PenaltyKind.BIT, 0) > 50

    def test_large_bit_table_converges(self):
        fi = fetch_input(self._loopy)
        stats = SingleBlockEngine(
            EngineConfig(geometry=GEO, bit_entries=1024)).run(fi)
        # Cold misses only — a handful of lines.
        assert stats.event_counts.get(PenaltyKind.BIT, 0) <= 8

    def test_bit_penalty_monotone_in_table_size(self):
        fi = fetch_input(self._loopy)
        penalties = []
        for entries in (1, 2, 8, 1024):
            stats = SingleBlockEngine(
                EngineConfig(geometry=GEO, bit_entries=entries)).run(fi)
            penalties.append(stats.event_cycles.get(PenaltyKind.BIT, 0))
        assert penalties[0] >= penalties[1] >= penalties[-1]

    def test_perfect_bit_never_charged(self):
        fi = fetch_input(self._loopy)
        stats = SingleBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert PenaltyKind.BIT not in stats.event_counts


class TestRecoveryTracking:
    def test_entries_recorded_for_conditionals(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 10)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        fi = fetch_input(body)
        engine = SingleBlockEngine(
            EngineConfig(geometry=GEO, track_recovery=True))
        engine.run(fi)
        assert len(engine.recovery_log) == 10  # one per executed cond walk
        entry = engine.recovery_log[0]
        assert entry.block_slot == 1
        assert entry.pht_block is not None
        assert entry.bits() > 0

    def test_disabled_by_default(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 10)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        fi = fetch_input(body)
        engine = SingleBlockEngine(EngineConfig(geometry=GEO))
        engine.run(fi)
        assert engine.recovery_log == []


class TestNotTakenTargetTracking:
    """Section 2's BBR target tracking: without it, each not-taken
    misprediction pays an extra cycle to re-read the target array."""

    def _random_branch(self, a):
        # A branch on an LCG bit: unpredictable, so both taken and
        # not-taken mispredictions occur in quantity.
        a.li("r3", 0)
        a.li("r4", 400)
        a.li("r20", 99)
        a.label("top")
        a.muli("r20", "r20", 1103515245)
        a.addi("r20", "r20", 12345)
        a.srli("r5", "r20", 16)
        a.andi("r5", "r5", 1)
        a.beq("r5", "r0", "skip")
        a.nop()
        a.label("skip")
        a.addi("r3", "r3", 1)
        a.blt("r3", "r4", "top")
        a.halt()

    def test_untracked_targets_cost_more(self):
        fi = fetch_input(self._random_branch)
        tracked = SingleBlockEngine(EngineConfig(
            geometry=GEO)).run(fi)
        untracked = SingleBlockEngine(EngineConfig(
            geometry=GEO,
            track_not_taken_targets=False)).run(fi)
        assert untracked.penalty_cycles > tracked.penalty_cycles
        # Same number of misprediction events, only dearer.
        assert untracked.event_counts.get(PenaltyKind.COND, 0) == \
            tracked.event_counts.get(PenaltyKind.COND, 0)

    def test_default_is_tracked(self):
        assert EngineConfig(geometry=GEO).track_not_taken_targets
