"""Numba backend: the dense replay loop, jitted or plain.

``dense_replay`` is deliberately a plain-Python callable so its logic
tests everywhere; the njit lane runs only where numba is installed
(the optional CI lane) and asserts the jitted loop stays equivalent.
"""

import numpy as np
import pytest

from repro.core.backends.base import replay_last_write
from repro.core.backends.numba_backend import NumbaBackend, dense_replay


def _random_stream(rng, m, n_keys):
    return (rng.integers(0, n_keys, m).astype(np.int64),
            rng.integers(0, 100, m).astype(np.int64),
            (rng.random(m) < 0.5),
            rng.integers(-1, 50, n_keys).astype(np.int64))


def _run_dense(keys, values, writes, init):
    state = init.copy()
    observed = np.zeros(len(keys), dtype=np.int64)
    written = np.zeros(len(init), dtype=bool)
    dense_replay(keys, values, writes, state, observed, written)
    final_keys = np.nonzero(written)[0].astype(np.int64)
    return observed, final_keys, state[final_keys]


def test_dense_replay_matches_vectorized_primitive():
    rng = np.random.default_rng(7)
    for _ in range(20):
        keys, values, writes, init = _random_stream(
            rng, int(rng.integers(0, 150)), 12)
        dense = _run_dense(keys, values, writes, init)
        vectorized = replay_last_write(keys, values, writes, init)
        for d, v in zip(dense, vectorized):
            assert np.array_equal(d, v)


def test_backend_replay_uses_plain_loop_without_numba():
    backend = NumbaBackend()
    rng = np.random.default_rng(11)
    keys, values, writes, init = _random_stream(rng, 80, 9)
    got = backend.replay(keys, values, writes, init)
    want = replay_last_write(keys, values, writes, init)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)
    # init must not be mutated by the backend's in-place loop
    assert init.dtype == np.int64


def test_backend_replay_empty_stream():
    backend = NumbaBackend()
    empty = np.zeros(0, dtype=np.int64)
    observed, final_keys, final_values = backend.replay(
        empty, empty, np.zeros(0, dtype=bool),
        np.arange(4, dtype=np.int64))
    assert observed.shape == (0,)
    assert final_keys.shape == (0,)
    assert final_values.shape == (0,)


def test_jitted_loop_matches_plain():
    pytest.importorskip("numba")
    backend = NumbaBackend()
    assert backend.available()
    rng = np.random.default_rng(23)
    keys, values, writes, init = _random_stream(rng, 200, 16)
    jitted = backend.replay(keys, values, writes, init)
    plain = _run_dense(keys, values, writes, init.copy())
    for j, p in zip(jitted, plain):
        assert np.array_equal(j, p)


def test_availability_reflects_import():
    backend = NumbaBackend()
    try:
        import numba  # noqa: F401
        assert backend.available()
    except ImportError:
        assert not backend.available()
