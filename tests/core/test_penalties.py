"""Table 3 penalty model tests — values straight from the paper."""

import pytest

from repro.core import (
    DOUBLE_SELECT,
    PenaltyKind,
    SINGLE_SELECT,
    penalty_cycles,
    table3,
)

PK = PenaltyKind


class TestSingleSelect:
    def test_block1_column(self):
        assert penalty_cycles(SINGLE_SELECT, 1, PK.COND) == 5
        assert penalty_cycles(SINGLE_SELECT, 1, PK.RETURN) == 4
        assert penalty_cycles(SINGLE_SELECT, 1, PK.MISFETCH_INDIRECT) == 4
        assert penalty_cycles(SINGLE_SELECT, 1, PK.MISFETCH_IMMEDIATE) == 1
        assert penalty_cycles(SINGLE_SELECT, 1, PK.BIT) == 1
        assert penalty_cycles(SINGLE_SELECT, 1, PK.BANK_CONFLICT) == 0

    def test_block2_column(self):
        assert penalty_cycles(SINGLE_SELECT, 2, PK.COND) == 5
        assert penalty_cycles(SINGLE_SELECT, 2, PK.RETURN) == 5
        assert penalty_cycles(SINGLE_SELECT, 2, PK.MISFETCH_INDIRECT) == 5
        assert penalty_cycles(SINGLE_SELECT, 2, PK.MISFETCH_IMMEDIATE) == 2
        assert penalty_cycles(SINGLE_SELECT, 2, PK.MISSELECT) == 1
        assert penalty_cycles(SINGLE_SELECT, 2, PK.GHR) == 1
        assert penalty_cycles(SINGLE_SELECT, 2, PK.BANK_CONFLICT) == 1

    def test_block1_has_no_misselect(self):
        with pytest.raises(ValueError):
            penalty_cycles(SINGLE_SELECT, 1, PK.MISSELECT)
        with pytest.raises(ValueError):
            penalty_cycles(SINGLE_SELECT, 1, PK.GHR)


class TestDoubleSelect:
    def test_block1_column(self):
        assert penalty_cycles(DOUBLE_SELECT, 1, PK.COND) == 5
        assert penalty_cycles(DOUBLE_SELECT, 1, PK.RETURN) == 4
        assert penalty_cycles(DOUBLE_SELECT, 1, PK.MISSELECT) == 1
        assert penalty_cycles(DOUBLE_SELECT, 1, PK.GHR) == 1

    def test_block2_column(self):
        assert penalty_cycles(DOUBLE_SELECT, 2, PK.MISSELECT) == 2
        assert penalty_cycles(DOUBLE_SELECT, 2, PK.GHR) == 2
        assert penalty_cycles(DOUBLE_SELECT, 2, PK.MISFETCH_IMMEDIATE) == 2

    def test_bit_cannot_occur(self):
        # Double selection removes BIT storage altogether.
        with pytest.raises(ValueError):
            penalty_cycles(DOUBLE_SELECT, 1, PK.BIT)
        with pytest.raises(ValueError):
            penalty_cycles(DOUBLE_SELECT, 2, PK.BIT)


class TestTableAccess:
    def test_unknown_combination_rejected(self):
        with pytest.raises(ValueError):
            penalty_cycles("triple", 1, PK.COND)
        with pytest.raises(ValueError):
            penalty_cycles(SINGLE_SELECT, 3, PK.COND)

    def test_table3_returns_copy(self):
        snapshot = table3()
        snapshot[(SINGLE_SELECT, 1)][PK.COND] = 99
        assert penalty_cycles(SINGLE_SELECT, 1, PK.COND) == 5

    def test_block2_never_cheaper_than_block1(self):
        full = table3()
        for scheme in (SINGLE_SELECT, DOUBLE_SELECT):
            for kind in PK:
                one = full[(scheme, 1)][kind]
                two = full[(scheme, 2)][kind]
                if one is not None and two is not None:
                    assert two >= one
