"""Walk logic tests, including the paper's Table 2 worked example."""

from repro.core import (
    SRC_ARRAY,
    SRC_FALLTHROUGH,
    SRC_NEAR,
    SRC_RAS,
    CodeWindowCache,
    walk_block,
)
from repro.icache import CacheGeometry
from repro.isa import Assembler
from repro.predictors import BlockedPHT
from repro.targets import BitCode

B = BitCode


def make_pht(states_by_position, history_length=4, block_width=8):
    """Blocked PHT with chosen counter states at index (ghr=0, line=0)."""
    pht = BlockedPHT(history_length=history_length, block_width=block_width)
    base = pht.index(0, 0)
    for pos, state in states_by_position.items():
        # Drive the counter to the requested state from INIT (2).
        while pht.counter(base, pos) < state:
            pht.update(base, pos, True)
        while pht.counter(base, pos) > state:
            pht.update(base, pos, False)
    return pht, base


class TestWalkBasics:
    def test_empty_line_falls_through(self):
        pht, base = make_pht({})
        pred = walk_block((B.NONBRANCH,) * 8, 0, 8, pht, base)
        assert pred.exit_offset is None
        assert pred.source == SRC_FALLTHROUGH
        assert pred.outcomes == ()

    def test_return_exits_immediately(self):
        pht, base = make_pht({})
        codes = (B.NONBRANCH, B.RETURN, B.NONBRANCH)
        pred = walk_block(codes, 0, 3, pht, base)
        assert pred.exit_offset == 1
        assert pred.source == SRC_RAS

    def test_other_branch_uses_target_array(self):
        pht, base = make_pht({})
        codes = (B.OTHER, B.NONBRANCH)
        pred = walk_block(codes, 0, 2, pht, base)
        assert pred.exit_offset == 0
        assert pred.source == SRC_ARRAY

    def test_not_taken_cond_continues(self):
        pht, base = make_pht({1: 0})  # strongly not-taken at position 1
        codes = (B.NONBRANCH, B.COND_LONG, B.RETURN)
        pred = walk_block(codes, 0, 3, pht, base)
        assert pred.exit_offset == 2
        assert pred.source == SRC_RAS
        assert pred.outcomes == (False,)

    def test_taken_cond_exits_via_array(self):
        pht, base = make_pht({1: 3})
        codes = (B.NONBRANCH, B.COND_LONG, B.RETURN)
        pred = walk_block(codes, 0, 3, pht, base)
        assert pred.exit_offset == 1
        assert pred.source == SRC_ARRAY
        assert pred.outcomes == (True,)

    def test_taken_near_cond_uses_adder(self):
        pht, base = make_pht({0: 3})
        pred = walk_block((B.COND_NEXT_LINE,), 0, 1, pht, base)
        assert pred.source == SRC_NEAR
        assert pred.near_code == B.COND_NEXT_LINE

    def test_positions_use_absolute_address(self):
        # A block starting mid-line consults counters at addr % B.
        pht, base = make_pht({5: 0, 6: 3})
        codes = (B.COND_LONG, B.COND_LONG)
        pred = walk_block(codes, 5, 2, pht, base)  # addresses 5, 6
        assert pred.exit_offset == 1
        assert pred.outcomes == (False, True)

    def test_multiple_not_taken_then_fallthrough(self):
        pht, base = make_pht({1: 0, 3: 1})
        codes = (B.NONBRANCH, B.COND_LONG, B.NONBRANCH, B.COND_LONG)
        pred = walk_block(codes, 0, 4, pht, base)
        assert pred.exit_offset is None
        assert pred.outcomes == (False, False)

    def test_selector_distinguishes_sources(self):
        pht, base = make_pht({})
        ras = walk_block((B.RETURN,), 0, 1, pht, base)
        arr = walk_block((B.OTHER,), 0, 1, pht, base)
        assert ras.selector != arr.selector

    def test_ghr_payload(self):
        pht, base = make_pht({0: 0, 1: 0, 2: 3})
        codes = (B.COND_LONG, B.COND_LONG, B.COND_LONG)
        pred = walk_block(codes, 0, 3, pht, base)
        payload = pred.ghr_payload
        assert payload.n_not_taken == 2
        assert payload.ends_taken


class TestTable2Example:
    """The worked example of Table 2.

    Line contents: 0 shift, 1 branch (PHT=10), 2 add, 3 jump, 4 sub,
    5 branch (PHT=11), 6 move, 7 return.  Counter "10" (2) and "11" (3)
    both predict taken.
    """

    CODES = (B.NONBRANCH, B.COND_LONG, B.NONBRANCH, B.OTHER,
             B.NONBRANCH, B.COND_LONG, B.NONBRANCH, B.RETURN)

    def _pht(self):
        return make_pht({1: 2, 5: 3})

    def test_start_0_exits_at_1(self):
        pht, base = self._pht()
        pred = walk_block(self.CODES[0:], 0, 8, pht, base)
        assert pred.exit_offset == 1           # exit position 1
        assert pred.source == SRC_ARRAY        # NLS target

    def test_start_2_exits_at_jump(self):
        pht, base = self._pht()
        pred = walk_block(self.CODES[2:], 2, 6, pht, base)
        assert 2 + pred.exit_offset == 3       # exit position 3
        assert pred.source == SRC_ARRAY        # NLS(3)

    def test_start_4_exits_at_5(self):
        pht, base = self._pht()
        pred = walk_block(self.CODES[4:], 4, 4, pht, base)
        assert 4 + pred.exit_offset == 5       # exit position 5, NLS(5)
        assert pred.source == SRC_ARRAY
        assert pred.outcomes == (True,)

    def test_start_6_exits_at_return(self):
        pht, base = self._pht()
        pred = walk_block(self.CODES[6:], 6, 2, pht, base)
        assert 6 + pred.exit_offset == 7       # exit position 7, RAS
        assert pred.source == SRC_RAS

    def test_second_chance_keeps_prediction(self):
        # Position 5 has PHT "11": after one not-taken outcome the counter
        # drops to "10" and the branch is *still* predicted taken — the
        # "select replacement" column's second-chance behaviour.
        pht, base = self._pht()
        pht.update(base, 5, False)
        pred = walk_block(self.CODES[4:], 4, 4, pht, base)
        assert 4 + pred.exit_offset == 5
        assert pred.outcomes == (True,)


class TestCodeWindowCache:
    def _static(self):
        asm = Assembler()
        for _ in range(10):
            asm.nop()
        asm.ret()     # address 10
        asm.halt()    # address 11
        return asm.assemble().static_code()

    def test_window_within_line(self):
        cache = CodeWindowCache(self._static(), CacheGeometry.normal(8),
                                near_block=False)
        window = cache.window(8, 4)
        assert window == (B.NONBRANCH, B.NONBRANCH, B.RETURN, B.NONBRANCH)

    def test_window_spanning_lines(self):
        cache = CodeWindowCache(self._static(), CacheGeometry.self_aligned(8),
                                near_block=False)
        window = cache.window(5, 8)  # addresses 5..12
        assert window[5] == B.RETURN  # address 10
        assert len(window) == 8

    def test_past_program_end_is_nonbranch(self):
        cache = CodeWindowCache(self._static(), CacheGeometry.normal(8),
                                near_block=False)
        window = cache.window(8, 8)
        assert all(c == B.NONBRANCH for c in window[4:])

    def test_lines_cached(self):
        cache = CodeWindowCache(self._static(), CacheGeometry.normal(8),
                                near_block=False)
        first = cache.line_codes(1)
        assert cache.line_codes(1) is first
