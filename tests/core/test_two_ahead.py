"""Two-block-ahead baseline: accuracy parity and the serialization knob."""

import pytest

from repro.core import (
    DualBlockEngine,
    EngineConfig,
    PenaltyKind,
    TARGET_BTB,
    TwoBlockAheadEngine,
)
from repro.cpu import Machine
from repro.icache import CacheGeometry
from repro.trace import SyntheticSpec, synthetic_program
from repro.core.config import FetchInput

GEO = CacheGeometry.normal(8)


def synthetic_input(seed=3, budget=60_000, **spec_kw):
    program = synthetic_program(SyntheticSpec(seed=seed, **spec_kw))
    trace = Machine(program).run(max_instructions=budget).trace
    return FetchInput.from_trace(trace, program.static_code(), GEO)


class TestValidation:
    def test_btb_rejected(self):
        with pytest.raises(ValueError):
            TwoBlockAheadEngine(
                EngineConfig(geometry=GEO, target_kind=TARGET_BTB))

    def test_negative_serialization_rejected(self):
        with pytest.raises(ValueError):
            TwoBlockAheadEngine(EngineConfig(geometry=GEO),
                                serialization_penalty=-1)

    def test_geometry_mismatch_rejected(self):
        fi = synthetic_input()
        engine = TwoBlockAheadEngine(
            EngineConfig(geometry=CacheGeometry.extended(8)))
        with pytest.raises(ValueError):
            engine.run(fi)


class TestBehaviour:
    def test_no_misselect_without_serialization(self):
        """Predictions come from the real PHT, not stored selectors."""
        fi = synthetic_input(seed=4, irregularity=0.7)
        stats = TwoBlockAheadEngine(EngineConfig(geometry=GEO)).run(fi)
        assert PenaltyKind.MISSELECT not in stats.event_counts
        assert PenaltyKind.GHR not in stats.event_counts

    def test_accuracy_comparable_to_select_table_scheme(self):
        """The paper: 'its accuracy is as good as a single block
        fetching' — IPC_f within ~15% of the dual select-table engine."""
        fi = synthetic_input(seed=6, irregularity=0.5)
        config = EngineConfig(geometry=GEO, n_select_tables=8)
        ahead = TwoBlockAheadEngine(config).run(fi)
        dual = DualBlockEngine(config).run(fi)
        assert ahead.ipc_f > 0.85 * dual.ipc_f

    def test_serialization_penalty_costs_cycles(self):
        """The drawback Wallace & Bagherzadeh highlight: serialized
        tag-matching.  One bubble per pair wrecks the fetch rate."""
        fi = synthetic_input(seed=8)
        config = EngineConfig(geometry=GEO)
        free = TwoBlockAheadEngine(config).run(fi)
        serial = TwoBlockAheadEngine(config,
                                     serialization_penalty=1).run(fi)
        assert serial.ipc_f < free.ipc_f
        assert serial.event_counts.get(PenaltyKind.MISSELECT, 0) > 0

    def test_instructions_conserved(self):
        fi = synthetic_input(seed=10)
        stats = TwoBlockAheadEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.n_instructions == fi.trace.n_instructions
        assert stats.n_blocks == fi.blocks.n_blocks
