"""Shared engine machinery: actual-block views, divergence, misfetch kinds."""

import pytest

from repro.core import (
    EARLY_TAKEN,
    LATE_TAKEN,
    MATCH,
    BlockCursor,
    PenaltyKind,
    classify_divergence,
    target_misfetch_kind,
)
from repro.core.engine_common import ActualBlock, K_CALL, K_COND, K_JUMP, \
    K_INDIRECT, K_RETURN
from repro.core.selection import BlockPrediction, SRC_ARRAY, \
    SRC_FALLTHROUGH
from repro.cpu import Machine
from repro.icache import CacheGeometry
from repro.isa import Assembler
from repro.trace import segment_blocks


def pred(exit_offset, outcomes=()):
    source = SRC_FALLTHROUGH if exit_offset is None else SRC_ARRAY
    return BlockPrediction(exit_offset, source, None, tuple(outcomes))


def actual(n_instr, exit_kind, start=0, conds=()):
    return ActualBlock(start, n_instr, exit_kind, 99, list(conds))


class TestActualBlock:
    def test_taken_exit_positions(self):
        blk = actual(5, K_JUMP, start=16)
        assert blk.has_taken_exit
        assert blk.exit_offset == 4
        assert blk.exit_pc == 20

    def test_fallthrough_has_no_exit(self):
        blk = actual(8, 0)
        assert not blk.has_taken_exit
        assert blk.exit_offset is None
        assert blk.exit_pc == -1

    def test_outcomes_order(self):
        blk = actual(6, K_COND,
                     conds=[(1, False, 1), (3, False, 3), (5, True, 5)])
        assert blk.outcomes == [False, False, True]


class TestClassifyDivergence:
    def test_match_taken(self):
        kind, off = classify_divergence(pred(3), actual(4, K_COND))
        assert kind == MATCH and off == 3

    def test_match_fallthrough(self):
        kind, off = classify_divergence(pred(None), actual(8, 0))
        assert kind == MATCH and off is None

    def test_early_taken(self):
        kind, off = classify_divergence(pred(2), actual(6, K_COND))
        assert kind == EARLY_TAKEN and off == 2

    def test_early_taken_vs_fallthrough(self):
        kind, off = classify_divergence(pred(5), actual(8, 0))
        assert kind == EARLY_TAKEN and off == 5

    def test_late_taken(self):
        kind, off = classify_divergence(pred(None), actual(4, K_COND))
        assert kind == LATE_TAKEN and off == 3

    def test_late_taken_past_exit(self):
        kind, off = classify_divergence(pred(6), actual(3, K_COND))
        assert kind == LATE_TAKEN and off == 2


class TestTargetMisfetchKind:
    def test_cond_is_immediate(self):
        assert target_misfetch_kind(K_COND, 42) == \
            PenaltyKind.MISFETCH_IMMEDIATE

    def test_direct_jump_and_call_are_immediate(self):
        assert target_misfetch_kind(K_JUMP, 42) == \
            PenaltyKind.MISFETCH_IMMEDIATE
        assert target_misfetch_kind(K_CALL, 42) == \
            PenaltyKind.MISFETCH_IMMEDIATE

    def test_indirect_call_is_indirect(self):
        assert target_misfetch_kind(K_CALL, -1) == \
            PenaltyKind.MISFETCH_INDIRECT

    def test_register_jump_is_indirect(self):
        assert target_misfetch_kind(K_INDIRECT, -1) == \
            PenaltyKind.MISFETCH_INDIRECT

    def test_return_handled_elsewhere(self):
        assert target_misfetch_kind(K_RETURN, -1) is None


class TestBlockCursor:
    def test_blocks_expose_conds_with_offsets(self):
        asm = Assembler()
        asm.li("r3", 0)              # 0
        asm.li("r4", 2)              # 1
        asm.label("top")
        asm.addi("r3", "r3", 1)      # 2
        asm.beq("r3", "r4", "out")   # 3: not taken, then taken
        asm.blt("r3", "r4", "top")   # 4: taken once
        asm.label("out")
        asm.halt()                   # 5
        trace = Machine(asm.assemble()).run().trace
        blocks = segment_blocks(trace, CacheGeometry.normal(8))
        cursor = BlockCursor(blocks)
        assert cursor.n_blocks == blocks.n_blocks
        first = cursor.block(0)
        # Block 0: pcs 0..4; beq at offset 3 (not taken), blt at 4 (taken).
        assert first.start == 0
        assert [c[:2] for c in first.conds] == [(3, False), (4, True)]
        assert first.exit_pc == 4
