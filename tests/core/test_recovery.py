"""Bad-branch-recovery entries — Table 4 field sizes."""

import pytest

from repro.core import RecoveryEntry, recovery_entry_bits
from repro.core.selection import SRC_ARRAY


class TestEntryBits:
    def test_paper_default_range(self):
        """Table 4 sums to roughly 40 bits with h=10, B=8, line index."""
        bits = recovery_entry_bits(history_length=10, block_width=8,
                                   include_pht_block=True,
                                   full_address=False)
        # 1+1+1 + 10 + 16 + 10 + 8 + 10 = 57? Table 4's ranges: 8-12 for
        # indices, 2n for the PHT block, 8-11 selector, 10/30 address.
        assert 40 <= bits <= 70

    def test_pht_block_optional(self):
        with_block = recovery_entry_bits(include_pht_block=True)
        without = recovery_entry_bits(include_pht_block=False)
        assert with_block - without == 16  # 2 * B bits

    def test_full_address_costs_more(self):
        assert recovery_entry_bits(full_address=True) - \
            recovery_entry_bits(full_address=False) == 20

    def test_scales_with_history(self):
        assert recovery_entry_bits(history_length=12) - \
            recovery_entry_bits(history_length=10) == 4  # index + GHR


class TestRecoveryEntry:
    def _entry(self, **kwargs):
        defaults = dict(
            block_slot=1,
            predicted_taken=True,
            second_chance=False,
            pht_index=123,
            pht_block=(2,) * 8,
            corrected_ghr=0b1010,
            replacement_selector=(SRC_ARRAY, 3, None),
            alternate_target=42,
        )
        defaults.update(kwargs)
        return RecoveryEntry(**defaults)

    def test_bits_delegates(self):
        entry = self._entry()
        assert entry.bits() == recovery_entry_bits(include_pht_block=True)

    def test_bits_without_pht_block(self):
        entry = self._entry(pht_block=None)
        assert entry.bits() == recovery_entry_bits(include_pht_block=False)

    def test_frozen(self):
        entry = self._entry()
        with pytest.raises(AttributeError):
            entry.block_slot = 2
