"""N-block engine: dual equivalence, scaling behaviour, penalties."""

import pytest

from repro.core import (
    DOUBLE_SELECT,
    DualBlockEngine,
    EngineConfig,
    MultiBlockEngine,
    MultiTargetArray,
    PenaltyKind,
    SINGLE_SELECT,
    TARGET_BTB,
    penalty_cycles_slot,
)
from repro.cpu import Machine
from repro.icache import CacheGeometry
from repro.trace import SyntheticSpec, synthetic_program
from repro.core.config import FetchInput

GEO = CacheGeometry.normal(8)


def synthetic_input(seed=3, geometry=GEO, budget=60_000, **spec_kw):
    program = synthetic_program(SyntheticSpec(seed=seed, **spec_kw))
    trace = Machine(program).run(max_instructions=budget).trace
    return FetchInput.from_trace(trace, program.static_code(), geometry)


class TestDualEquivalence:
    """MultiBlockEngine(n=2) must be cycle-for-cycle the dual engine."""

    @pytest.mark.parametrize("selection", [SINGLE_SELECT, DOUBLE_SELECT])
    @pytest.mark.parametrize("geometry", [
        CacheGeometry.normal(8),
        CacheGeometry.extended(8),
        CacheGeometry.self_aligned(8),
    ], ids=["normal", "extended", "self_aligned"])
    def test_identical_stats(self, selection, geometry):
        fi = synthetic_input(seed=11, geometry=geometry, irregularity=0.6)
        config = EngineConfig(geometry=geometry, selection=selection,
                              n_select_tables=8)
        dual = DualBlockEngine(config).run(fi)
        multi = MultiBlockEngine(config, n_blocks_per_cycle=2).run(fi)
        assert multi.base_cycles == dual.base_cycles
        assert multi.event_counts == dual.event_counts
        assert multi.event_cycles == dual.event_cycles
        assert multi.ipc_f == dual.ipc_f


class TestValidation:
    def test_zero_blocks_rejected(self):
        with pytest.raises(ValueError):
            MultiBlockEngine(EngineConfig(geometry=GEO), 0)

    def test_bit_entries_rejected(self):
        with pytest.raises(ValueError):
            MultiBlockEngine(EngineConfig(geometry=GEO, bit_entries=64), 2)

    def test_btb_rejected(self):
        with pytest.raises(ValueError):
            MultiBlockEngine(
                EngineConfig(geometry=GEO, target_kind=TARGET_BTB), 2)

    def test_geometry_mismatch_rejected(self):
        fi = synthetic_input(seed=1)
        engine = MultiBlockEngine(
            EngineConfig(geometry=CacheGeometry.extended(8)), 2)
        with pytest.raises(ValueError):
            engine.run(fi)


class TestScaling:
    def test_base_cycles_shrink_with_width(self):
        fi = synthetic_input(seed=5)
        cycles = []
        for n in (1, 2, 4):
            stats = MultiBlockEngine(
                EngineConfig(geometry=GEO, n_select_tables=8), n).run(fi)
            cycles.append(stats.base_cycles)
        assert cycles[0] > cycles[1] > cycles[2]

    def test_predictable_code_gains_from_more_blocks(self):
        fi = synthetic_input(seed=7, irregularity=0.05, body_ops=8,
                             iterations=24)
        ipcs = []
        for n in (2, 3, 4):
            stats = MultiBlockEngine(
                EngineConfig(geometry=GEO, n_select_tables=8), n).run(fi)
            ipcs.append(stats.ipc_f)
        assert ipcs[-1] > ipcs[0]

    def test_instructions_conserved(self):
        fi = synthetic_input(seed=9)
        for n in (1, 2, 3, 5):
            stats = MultiBlockEngine(EngineConfig(geometry=GEO), n).run(fi)
            assert stats.n_instructions == fi.trace.n_instructions

    def test_later_slots_charge_more(self):
        fi = synthetic_input(seed=13, irregularity=0.8)
        # With more slots, misselects get more expensive on average.
        wide = MultiBlockEngine(
            EngineConfig(geometry=GEO, n_select_tables=8), 4).run(fi)
        narrow = MultiBlockEngine(
            EngineConfig(geometry=GEO, n_select_tables=8), 2).run(fi)
        if wide.event_counts.get(PenaltyKind.MISSELECT, 0) and \
                narrow.event_counts.get(PenaltyKind.MISSELECT, 0):
            wide_avg = (wide.event_cycles[PenaltyKind.MISSELECT]
                        / wide.event_counts[PenaltyKind.MISSELECT])
            narrow_avg = (narrow.event_cycles[PenaltyKind.MISSELECT]
                          / narrow.event_counts[PenaltyKind.MISSELECT])
            assert wide_avg >= narrow_avg


class TestPenaltyExtrapolation:
    def test_slots_one_two_match_table3(self):
        for slot in (1, 2):
            assert penalty_cycles_slot(SINGLE_SELECT, slot,
                                       PenaltyKind.RETURN) in (4, 5)

    def test_plus_one_per_slot_pattern(self):
        assert penalty_cycles_slot(SINGLE_SELECT, 3,
                                   PenaltyKind.RETURN) == 6
        assert penalty_cycles_slot(SINGLE_SELECT, 4,
                                   PenaltyKind.MISFETCH_IMMEDIATE) == 4
        assert penalty_cycles_slot(SINGLE_SELECT, 3,
                                   PenaltyKind.MISSELECT) == 2
        assert penalty_cycles_slot(DOUBLE_SELECT, 3,
                                   PenaltyKind.MISSELECT) == 3

    def test_flat_penalties_stay_flat(self):
        assert penalty_cycles_slot(SINGLE_SELECT, 5,
                                   PenaltyKind.COND) == 5
        assert penalty_cycles_slot(SINGLE_SELECT, 5,
                                   PenaltyKind.BIT) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            penalty_cycles_slot(SINGLE_SELECT, 0, PenaltyKind.COND)
        with pytest.raises(ValueError):
            penalty_cycles_slot(DOUBLE_SELECT, 3, PenaltyKind.BIT)


class TestMultiTargetArray:
    def test_slots_independent(self):
        array = MultiTargetArray(3, 16, 8)
        array.update(1, 4, 2, 111)
        array.update(3, 4, 2, 333)
        assert array.lookup(1, 4, 2) == 111
        assert array.lookup(2, 4, 2) is None
        assert array.lookup(3, 4, 2) == 333

    def test_storage_scales_with_slots(self):
        assert MultiTargetArray(4, 256, 8).storage_bits == \
            4 * MultiTargetArray(1, 256, 8).storage_bits

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTargetArray(0)
