"""Kernel-backend registry, replay primitive, and compiled-tier tests.

Covers the ``REPRO_BACKEND`` contract end to end: mode parsing and the
degradation chains, the keyed last-write replay against a brute-force
reference, engine-level bit-exactness of every registered backend
against the scalar loops (stats *and* full predictor state), and the
persistence of exec-generated kernels across loaders and processes.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.core import DOUBLE_SELECT, DualBlockEngine, EngineConfig, \
    SingleBlockEngine
from repro.core.backends import (
    BACKEND_ENV,
    BACKEND_MODES,
    available_backends,
    backend_mode,
    get_backend,
    resolve_backend,
)
from repro.core.backends.base import replay_last_write
from repro.core.backends.codegen import KernelLoader, KernelSpec, \
    generate_source
from repro.core.engine_mode import ENGINE_ENV
from repro.core.multi import MultiBlockEngine
from repro.core.two_ahead import TwoBlockAheadEngine
from repro.icache import CacheGeometry
from repro.qa.state import engine_state
from repro.workloads import load_fetch_input

BUDGET = 4_000


# -- replay_last_write --------------------------------------------------


def _replay_reference(keys, values, writes, init):
    """Dense per-event loop: the semantics replay_last_write vectorizes."""
    state = dict(enumerate(init))
    written = set()
    observed = []
    for k, v, w in zip(keys, values, writes):
        observed.append(state[k])
        if w:
            state[k] = v
            written.add(k)
    final_keys = sorted(written)
    return (np.asarray(observed, dtype=np.int64),
            np.asarray(final_keys, dtype=np.int64),
            np.asarray([state[k] for k in final_keys], dtype=np.int64))


def _assert_replay_matches(keys, values, writes, init):
    got = replay_last_write(
        np.asarray(keys, dtype=np.int64),
        np.asarray(values, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        np.asarray(init, dtype=np.int64))
    want = _replay_reference(keys, values, writes, init)
    for g, w in zip(got, want):
        assert np.array_equal(g, w), (got, want)


def test_replay_empty_stream():
    _assert_replay_matches([], [], [], [5, 7])


def test_replay_single_read_sees_init():
    _assert_replay_matches([1], [99], [False], [10, 20, 30])


def test_replay_write_then_read_same_key():
    _assert_replay_matches([2, 2], [41, 0], [True, False], [0, 0, 7])


def test_replay_rewrite_of_same_value_counts_as_written():
    # The scalar engines replace cold None entries on every write, so a
    # write event must mark the key written even when the stored value
    # is already present.
    _, final_keys, final_values = replay_last_write(
        np.array([3], dtype=np.int64), np.array([9], dtype=np.int64),
        np.array([True]), np.array([0, 0, 0, 9], dtype=np.int64))
    assert final_keys.tolist() == [3]
    assert final_values.tolist() == [9]


def test_replay_randomized_against_reference():
    rng = np.random.default_rng(1997)
    for _ in range(25):
        m = int(rng.integers(1, 200))
        n_keys = int(rng.integers(1, 20))
        keys = rng.integers(0, n_keys, m)
        values = rng.integers(-5, 100, m)
        writes = rng.random(m) < 0.5
        init = rng.integers(-1, 50, n_keys)
        _assert_replay_matches(keys, values, writes, init)


# -- registry -----------------------------------------------------------


def test_backend_mode_defaults_to_numpy(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert backend_mode() == "numpy"
    monkeypatch.setenv(BACKEND_ENV, "")
    assert backend_mode() == "numpy"


@pytest.mark.parametrize("mode", BACKEND_MODES)
def test_backend_mode_accepts_every_registered_mode(monkeypatch, mode):
    monkeypatch.setenv(BACKEND_ENV, mode.upper())
    assert backend_mode() == mode


def test_backend_mode_rejects_unknown(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "turbo")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        backend_mode()


def test_numpy_always_available():
    assert "numpy" in available_backends()
    assert resolve_backend("numpy").name == "numpy"


def test_numba_request_degrades_along_chain():
    try:
        import numba  # noqa: F401
        expected = "numba"
    except ImportError:
        expected = "compiled"
    assert resolve_backend("numba").name == expected


def test_chain_degrades_to_numpy_when_everything_unavailable(monkeypatch):
    for name in ("numba", "compiled"):
        monkeypatch.setattr(get_backend(name), "available",
                            lambda: False)
    assert resolve_backend("numba").name == "numpy"
    assert resolve_backend("compiled").name == "numpy"


def test_compiled_unavailable_hides_it_from_numba_chain(monkeypatch):
    monkeypatch.setattr(get_backend("compiled"), "available",
                        lambda: False)
    resolved = resolve_backend("numba")
    assert resolved.name != "compiled"


# -- engine-level backend parity ---------------------------------------


GEOMETRY = CacheGeometry.self_aligned(8)

ENGINES = {
    "single": lambda c: SingleBlockEngine(c),
    "single-btb": None,  # built below: exercises the numpy fallback
    "dual-double": lambda c: DualBlockEngine(c),
    "multi-3": lambda c: MultiBlockEngine(c, 3),
    "two-ahead": lambda c: TwoBlockAheadEngine(c),
}


def _build(engine_name):
    kw = {"n_select_tables": 4}
    if engine_name == "dual-double":
        kw["selection"] = DOUBLE_SELECT
    if engine_name == "single-btb":
        kw.update(target_kind="btb", target_entries=64,
                  btb_associativity=4)
        config = EngineConfig(geometry=GEOMETRY, **kw)
        return SingleBlockEngine(config)
    config = EngineConfig(geometry=GEOMETRY, **kw)
    return ENGINES[engine_name](config)


def _run_case(engine_name, monkeypatch, mode, backend=None):
    monkeypatch.setenv(ENGINE_ENV, mode)
    if backend is None:
        monkeypatch.delenv(BACKEND_ENV, raising=False)
    else:
        monkeypatch.setenv(BACKEND_ENV, backend)
    engine = _build(engine_name)
    stats = [engine.run(load_fetch_input(name, GEOMETRY, BUDGET))
             for name in ("li", "li")]  # second run hits warm tables
    return stats, engine_state(engine)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_every_backend_matches_scalar(engine_name, monkeypatch):
    ref_stats, ref_state = _run_case(engine_name, monkeypatch, "scalar")
    for backend in available_backends():
        stats, state = _run_case(engine_name, monkeypatch, "fast",
                                 backend)
        assert stats == ref_stats, backend
        assert state == ref_state, backend


# -- compiled-kernel persistence ---------------------------------------


def _spec():
    consts = {"LS": 16, "NBE": 64, "TLS": 16, "IMM": 2, "IND": 4}
    return KernelSpec("single", tuple(sorted(consts.items())))


def test_kernel_persisted_and_reused_by_fresh_loader(tmp_path):
    spec = _spec()
    first = KernelLoader(cache_root=tmp_path)
    fn = first.load(spec)
    assert callable(fn)
    assert first.last_origin == "generated"
    path = tmp_path / f"single-{spec.digest()}.py"
    assert path.is_file()
    assert first.load(spec) is fn
    assert first.last_origin == "memo"

    second = KernelLoader(cache_root=tmp_path)
    assert callable(second.load(spec))
    assert second.last_origin == "disk"


def test_corrupt_kernel_artifact_is_regenerated(tmp_path):
    spec = _spec()
    path = tmp_path / f"single-{spec.digest()}.py"
    path.write_text("def kernel(:\n")  # syntactically broken
    loader = KernelLoader(cache_root=tmp_path)
    assert callable(loader.load(spec))
    assert loader.last_origin == "generated"
    # the overwrite left a loadable artifact behind
    healed = KernelLoader(cache_root=tmp_path)
    assert callable(healed.load(spec))
    assert healed.last_origin == "disk"


def test_generated_source_is_deterministic():
    assert generate_source(_spec()) == generate_source(_spec())


def test_kernel_reused_across_processes(tmp_path):
    spec = _spec()
    KernelLoader(cache_root=tmp_path).load(spec)
    script = (
        "import pathlib, sys\n"
        "from repro.core.backends.codegen import KernelLoader, "
        "KernelSpec\n"
        f"consts = {dict(_spec().constants)!r}\n"
        "spec = KernelSpec('single', tuple(sorted(consts.items())))\n"
        f"loader = KernelLoader(cache_root=pathlib.Path({str(tmp_path)!r}))\n"
        "loader.load(spec)\n"
        "print(loader.last_origin)\n")
    result = subprocess.run([sys.executable, "-c", script],
                            capture_output=True, text=True, check=True)
    assert result.stdout.strip() == "disk"
