"""Near-block target encoding, end to end through the engines.

Table 1's 3-bit BIT codes let conditional branches with targets within
±2 lines be computed by an adder instead of occupying the target array:
no cold misfetch, no array pressure.
"""

from repro.core import (
    DualBlockEngine,
    EngineConfig,
    FetchInput,
    PenaltyKind,
    SingleBlockEngine,
)
from repro.icache import CacheGeometry
from repro.isa import Assembler

GEO = CacheGeometry.normal(8)


def near_target_loop():
    """A taken conditional branch whose target is in the same line."""
    asm = Assembler()
    asm.li("r3", 0)             # 0
    asm.li("r4", 300)           # 1
    asm.label("top")            # 2
    asm.addi("r3", "r3", 1)     # 2
    asm.blt("r3", "r4", "top")  # 3: target line == own line (near)
    asm.halt()                  # 4
    return FetchInput.from_program(asm.assemble(), GEO)


def far_target_loop():
    """A loop whose conditional branch jumps more than two lines ahead."""
    asm = Assembler()
    asm.li("r3", 0)                   # 0
    asm.li("r4", 300)                 # 1
    asm.label("top")
    asm.addi("r3", "r3", 1)           # 2
    asm.blt("r3", "r4", "faraway")    # 3: target ~5 lines away (far)
    asm.halt()                        # 4
    for _ in range(40):
        asm.nop()
    asm.label("faraway")
    asm.j("top")
    return FetchInput.from_program(asm.assemble(), GEO)


class TestNearBlockSingleEngine:
    def test_near_target_never_misfetches(self):
        stats = SingleBlockEngine(EngineConfig(
            geometry=GEO, near_block=True)).run(near_target_loop())
        assert PenaltyKind.MISFETCH_IMMEDIATE not in stats.event_counts

    def test_without_encoding_the_cold_array_misfetches(self):
        stats = SingleBlockEngine(EngineConfig(
            geometry=GEO, near_block=False)).run(near_target_loop())
        assert stats.event_counts.get(PenaltyKind.MISFETCH_IMMEDIATE,
                                      0) >= 1

    def test_far_targets_still_use_the_array(self):
        """A target beyond +-2 lines encodes as COND_LONG either way."""
        near = SingleBlockEngine(EngineConfig(
            geometry=GEO, near_block=True)).run(far_target_loop())
        plain = SingleBlockEngine(EngineConfig(
            geometry=GEO, near_block=False)).run(far_target_loop())
        # Both pay exactly the same cold misfetch on the far branch.
        assert near.event_counts.get(PenaltyKind.MISFETCH_IMMEDIATE, 0) == \
            plain.event_counts.get(PenaltyKind.MISFETCH_IMMEDIATE, 0)


class TestNearBlockDualEngine:
    def test_near_target_never_misfetches(self):
        stats = DualBlockEngine(EngineConfig(
            geometry=GEO, near_block=True,
            n_select_tables=8)).run(near_target_loop())
        assert PenaltyKind.MISFETCH_IMMEDIATE not in stats.event_counts

    def test_near_block_not_worse(self):
        fi = near_target_loop()
        near = DualBlockEngine(EngineConfig(
            geometry=GEO, near_block=True)).run(fi)
        plain = DualBlockEngine(EngineConfig(
            geometry=GEO, near_block=False)).run(fi)
        assert near.penalty_cycles <= plain.penalty_cycles
