"""Scalar vs fast engine parity — the bit-exactness contract.

``REPRO_ENGINE=fast`` routes every engine's ``run`` through the
vectorized kernels of :mod:`repro.core.fast`.  The contract is strict:
for any workload and configuration the fast path must produce a
``FetchStats`` *equal* to the scalar reference loop's — same counts,
same cycles, same event breakdown — and must leave every predictor
structure (PHT counters, select tables, BIT, target arrays, BTB LRU
order, RAS) in the identical state, so interleaving scalar and fast
runs on one warm engine can never diverge.

The matrix below mirrors the paper's coverage: every engine, all three
cache organisations, single and double selection, BIT/BTB/near-block
variants, and warm re-runs (including cross-workload, which exercises
stale-BIT reconstruction from a previously trained table).
"""

import pytest

from repro.core import (
    DOUBLE_SELECT,
    DualBlockEngine,
    EngineConfig,
    SingleBlockEngine,
)
from repro.core.engine_mode import ENGINE_ENV
from repro.core.multi import MultiBlockEngine
from repro.core.two_ahead import TwoBlockAheadEngine
from repro.icache import CacheGeometry
from repro.qa.state import engine_state
from repro.workloads import load_fetch_input

BUDGET = 6_000

GEOMETRIES = {
    "normal": CacheGeometry.normal(8),
    "extend": CacheGeometry.extended(8),
    "align": CacheGeometry.self_aligned(8),
}


def _config(geometry, **kw):
    kw.setdefault("n_select_tables", 4)
    return EngineConfig(geometry=geometry, **kw)


#: (engine factory, config kwargs) cells.  Each factory takes a config
#: and returns a fresh engine.
ENGINES = {
    "single": (SingleBlockEngine, {}),
    "single-bit": (SingleBlockEngine, {"bit_entries": 8}),
    "single-near": (SingleBlockEngine, {"near_block": True}),
    "single-btb": (SingleBlockEngine,
                   {"target_kind": "btb", "target_entries": 64,
                    "btb_associativity": 4}),
    "single-nott": (SingleBlockEngine,
                    {"track_not_taken_targets": False}),
    "dual-single": (DualBlockEngine, {}),
    "dual-double": (DualBlockEngine, {"selection": DOUBLE_SELECT}),
    "multi-1": (lambda c: MultiBlockEngine(c, 1), {}),
    "multi-3": (lambda c: MultiBlockEngine(c, 3), {}),
    "multi-3-double": (lambda c: MultiBlockEngine(c, 3),
                       {"selection": DOUBLE_SELECT}),
    "two-ahead": (TwoBlockAheadEngine, {}),
    "two-ahead-ser": (lambda c: TwoBlockAheadEngine(
        c, serialization_penalty=1), {}),
}


# "Full engine state" is defined once, in repro.qa.state, shared by this
# fixed matrix and the fuzz oracle so the two can never drift apart.

def run_both(factory, cfg_kw, geometry, monkeypatch,
             workloads=("compress",)):
    """Run the same engine scalar and fast; return both (stats, state)."""
    out = []
    for mode in ("scalar", "fast"):
        monkeypatch.setenv(ENGINE_ENV, mode)
        config = _config(geometry, **cfg_kw)
        engine = factory(config)
        stats = [engine.run(load_fetch_input(name, geometry, BUDGET))
                 for name in workloads]
        out.append((stats, engine_state(engine)))
    return out


@pytest.mark.parametrize("geometry_name", sorted(GEOMETRIES))
@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_scalar_fast_parity(engine_name, geometry_name, monkeypatch):
    factory, cfg_kw = ENGINES[engine_name]
    geometry = GEOMETRIES[geometry_name]
    (scalar_stats, scalar_state), (fast_stats, fast_state) = run_both(
        factory, cfg_kw, geometry, monkeypatch)
    assert fast_stats == scalar_stats
    assert fast_state == scalar_state


@pytest.mark.parametrize("engine_name", [
    "single-bit", "single-btb", "dual-double", "multi-3", "two-ahead"])
def test_warm_rerun_parity(engine_name, monkeypatch):
    """Warm tables: run li, then gcc, then li again on ONE engine.

    The cross-workload middle run plants foreign entries in every table
    (the BIT case is the sharpest: stale windows must be reconstructed
    from codes trained by a different program), so the final run starts
    from a genuinely dirty warm state.
    """
    factory, cfg_kw = ENGINES[engine_name]
    geometry = GEOMETRIES["normal"]
    (scalar_stats, scalar_state), (fast_stats, fast_state) = run_both(
        factory, cfg_kw, geometry, monkeypatch,
        workloads=("li", "gcc", "li"))
    assert fast_stats == scalar_stats
    assert fast_state == scalar_state


def test_mixed_mode_interleaving(monkeypatch):
    """Scalar and fast runs interleave on one engine without diverging."""
    geometry = GEOMETRIES["align"]
    fetch_input = load_fetch_input("go", geometry, BUDGET)

    monkeypatch.setenv(ENGINE_ENV, "scalar")
    reference = DualBlockEngine(_config(geometry))
    ref_stats = [reference.run(fetch_input) for _ in range(3)]

    mixed = DualBlockEngine(_config(geometry))
    mixed_stats = []
    for mode in ("fast", "scalar", "fast"):
        monkeypatch.setenv(ENGINE_ENV, mode)
        mixed_stats.append(mixed.run(fetch_input))

    assert mixed_stats == ref_stats
    monkeypatch.setenv(ENGINE_ENV, "scalar")
    assert engine_state(mixed) == engine_state(reference)


def test_track_recovery_matches_scalar(monkeypatch):
    """Recovery tracking needs the serial loop; fast mode defers to it."""
    geometry = GEOMETRIES["normal"]
    fetch_input = load_fetch_input("compress", geometry, BUDGET)

    monkeypatch.setenv(ENGINE_ENV, "scalar")
    scalar_engine = SingleBlockEngine(_config(geometry,
                                              track_recovery=True))
    scalar = scalar_engine.run(fetch_input)

    monkeypatch.setenv(ENGINE_ENV, "fast")
    fast_engine = SingleBlockEngine(_config(geometry,
                                            track_recovery=True))
    fast = fast_engine.run(fetch_input)
    assert fast == scalar
    assert fast_engine.recovery_log == scalar_engine.recovery_log
    assert fast_engine.recovery_log  # tracking actually happened


def test_timeline_recording_matches_scalar(monkeypatch):
    """Timeline recording also defers to the serial loop, identically."""
    geometry = GEOMETRIES["normal"]
    fetch_input = load_fetch_input("compress", geometry, BUDGET)

    monkeypatch.setenv(ENGINE_ENV, "scalar")
    scalar = DualBlockEngine(_config(geometry)).run(fetch_input,
                                                    record_timeline=True)
    monkeypatch.setenv(ENGINE_ENV, "fast")
    fast = DualBlockEngine(_config(geometry)).run(fetch_input,
                                                  record_timeline=True)
    assert fast == scalar
    assert fast.timeline == scalar.timeline


def test_engine_mode_validation(monkeypatch):
    from repro.core import engine_mode

    monkeypatch.setenv(ENGINE_ENV, "vectorised")
    with pytest.raises(ValueError, match=ENGINE_ENV):
        engine_mode.engine_mode()
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    assert engine_mode.engine_mode() == "fast"
    monkeypatch.setenv(ENGINE_ENV, "scalar")
    assert not engine_mode.use_fast_engine()
