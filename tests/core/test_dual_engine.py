"""Dual-block engine behaviour: pairing, selection, conflicts, penalties."""

import pytest

from repro.core import (
    DOUBLE_SELECT,
    DualBlockEngine,
    EngineConfig,
    FetchInput,
    PenaltyKind,
    SingleBlockEngine,
)
from repro.cpu import Machine
from repro.icache import CacheGeometry
from repro.isa import Assembler
from repro.trace import SyntheticSpec, synthetic_program

GEO = CacheGeometry.normal(8)


def fetch_input(build, geometry=GEO):
    asm = Assembler()
    build(asm)
    return FetchInput.from_program(asm.assemble(), geometry)


def synthetic_input(seed=3, geometry=GEO, budget=80_000, **spec_kw):
    program = synthetic_program(SyntheticSpec(seed=seed, **spec_kw))
    trace = Machine(program).run(max_instructions=budget).trace
    return FetchInput.from_trace(trace, program.static_code(), geometry)


class TestCycleAccounting:
    def test_base_cycles_one_plus_half(self):
        def body(a):
            for _ in range(40):
                a.nop()
            a.halt()
        fi = fetch_input(body)  # 41 instructions -> 6 blocks
        stats = DualBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.n_blocks == 6
        assert stats.base_cycles == 1 + 3  # b0 alone, then (1,2)(3,4)(5)

    def test_straight_line_penalty_free(self):
        def body(a):
            for _ in range(64):
                a.nop()
            a.halt()
        fi = fetch_input(body)
        stats = DualBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.penalty_cycles == 0
        # 65 instructions, 9 blocks: b0 alone + 4 pairs = 5 cycles.
        assert stats.ipc_f == pytest.approx(65 / 5)

    def test_dual_beats_single_on_loops(self):
        fi = synthetic_input(seed=5, iterations=30, body_ops=6)
        single = SingleBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        dual = DualBlockEngine(
            EngineConfig(geometry=GEO, n_select_tables=8)).run(fi)
        assert dual.ipc_f > single.ipc_f * 1.2


class TestConfigValidation:
    def test_bit_entries_rejected(self):
        with pytest.raises(ValueError):
            DualBlockEngine(EngineConfig(geometry=GEO, bit_entries=64))

    def test_geometry_mismatch_rejected(self):
        def body(a):
            a.halt()
        fi = fetch_input(body, geometry=GEO)
        engine = DualBlockEngine(
            EngineConfig(geometry=CacheGeometry.self_aligned(8)))
        with pytest.raises(ValueError):
            engine.run(fi)

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(geometry=GEO, selection="triple")


class TestSelection:
    def test_steady_loop_misselects_settle(self):
        def body(a):
            a.li("r3", 0)
            a.li("r4", 400)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.addi("r5", "r5", 1)
            a.addi("r6", "r6", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        fi = fetch_input(body)
        stats = DualBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        # After warmup the select table repeats the same selector.
        assert stats.event_counts.get(PenaltyKind.MISSELECT, 0) <= 6

    def test_double_selection_slower_than_single(self):
        """Figure 8's message: double selection costs ~10%."""
        fi = synthetic_input(seed=9, irregularity=0.8, iterations=24)
        single = DualBlockEngine(EngineConfig(
            geometry=GEO, n_select_tables=1)).run(fi)
        double = DualBlockEngine(EngineConfig(
            geometry=GEO, n_select_tables=1,
            selection=DOUBLE_SELECT)).run(fi)
        assert double.ipc_f < single.ipc_f
        # Double selection charges misselects on block 1 as well.
        assert double.event_counts.get(PenaltyKind.MISSELECT, 0) >= \
            single.event_counts.get(PenaltyKind.MISSELECT, 0)

    def test_more_select_tables_do_not_hurt(self):
        fi = synthetic_input(seed=11, irregularity=0.6)
        by_tables = {}
        for n in (1, 8):
            stats = DualBlockEngine(EngineConfig(
                geometry=GEO, n_select_tables=n)).run(fi)
            by_tables[n] = stats.event_counts.get(PenaltyKind.MISSELECT, 0)
        assert by_tables[8] <= by_tables[1]

    def test_double_selection_has_no_bit_penalties(self):
        fi = synthetic_input(seed=2)
        stats = DualBlockEngine(EngineConfig(
            geometry=GEO, selection=DOUBLE_SELECT)).run(fi)
        assert PenaltyKind.BIT not in stats.event_counts


class TestBankConflicts:
    def test_conflicting_lines_charged(self):
        # A loop body exactly 8 lines long: the pair's two blocks hit
        # lines n and n+8 -> same bank with 8 banks.
        def body(a):
            a.li("r3", 0)
            a.li("r4", 300)
            a.label("top")          # address 2
            for _ in range(62):
                a.addi("r5", "r5", 1)
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        fi = fetch_input(body)
        stats = DualBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.event_counts.get(PenaltyKind.BANK_CONFLICT, 0) > 100

    def test_same_line_pair_is_free(self):
        # Tight 2-block loop inside one line: shared line, no conflict.
        def body(a):
            a.li("r3", 0)
            a.li("r4", 300)
            a.label("top")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "top")
            a.halt()
        fi = fetch_input(body)
        stats = DualBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.event_counts.get(PenaltyKind.BANK_CONFLICT, 0) == 0


class TestGeometries:
    @pytest.mark.parametrize("geometry", [
        CacheGeometry.normal(8),
        CacheGeometry.extended(8),
        CacheGeometry.self_aligned(8),
    ], ids=["normal", "extended", "self_aligned"])
    def test_runs_on_all_cache_types(self, geometry):
        fi = synthetic_input(seed=4, geometry=geometry)
        for selection in ("single", "double"):
            stats = DualBlockEngine(EngineConfig(
                geometry=geometry, selection=selection,
                n_select_tables=8)).run(fi)
            assert stats.n_instructions == fi.trace.n_instructions
            assert stats.fetch_cycles > 0

    def test_self_aligned_improves_ipb(self):
        fi_normal = synthetic_input(seed=6, geometry=CacheGeometry.normal(8))
        fi_aligned = synthetic_input(seed=6,
                                     geometry=CacheGeometry.self_aligned(8))
        assert fi_aligned.blocks.ipb >= fi_normal.blocks.ipb
