"""Unit tests for the vectorized fetch-engine kernels.

Each kernel is locked against the scalar structure it compiles away:
the selector encoding against ``BlockPrediction`` equality, the counter
scan against saturating-counter replay, the batched walk against
``walk_block``, bank-conflict pairs against ``blocks_conflict``, and
the compiled-arrays disk cache against a recompile.
"""

import numpy as np
import pytest

from repro.core.kernels import (
    CODE_COND_LONG,
    CODE_NONBRANCH,
    CODE_OTHER,
    CODE_RETURN,
    CompiledBlocks,
    compile_fetch_input,
    decode_selector,
    encode_selector,
    pair_conflicts,
    resolve_walks,
    scan_counters,
)
from repro.core.selection import (
    SRC_ARRAY,
    SRC_FALLTHROUGH,
    SRC_NEAR,
    SRC_RAS,
    walk_block,
)
from repro.icache import CacheGeometry
from repro.icache.banks import blocks_conflict
from repro.workloads import load_fetch_input

BUDGET = 5_000

GEOMETRIES = [CacheGeometry.normal(8), CacheGeometry.extended(8),
              CacheGeometry.self_aligned(8)]


# ----------------------------------------------------------------------
# Selector encoding
# ----------------------------------------------------------------------

def test_selector_roundtrip_is_injective():
    width = 8
    seen = {}
    for src in (SRC_FALLTHROUGH, SRC_RAS, SRC_ARRAY, SRC_NEAR):
        for off in (None, *range(width)):
            for near in (None, 4, 5, 6, 7):
                sel = encode_selector(width, src, off, near)
                assert decode_selector(width, sel) == (src, off, near)
                assert sel not in seen, (seen[sel], (src, off, near))
                seen[sel] = (src, off, near)


def test_cold_selector_encodes_to_zero():
    # The kernels seed unwritten select-table slots with all-zero
    # integers; that must decode to the scalar tables' cold entry
    # (fall-through selector, empty outcomes) for warm-state parity.
    from repro.core.select_table import SelectEntry

    cold = SelectEntry.default()
    src, off, near = cold.selector
    assert encode_selector(8, src, off, near) == 0
    assert decode_selector(8, 0) == cold.selector


# ----------------------------------------------------------------------
# Counter scan
# ----------------------------------------------------------------------

def _scalar_counter_replay(counters, reads, writes):
    """Replay (block-ordered, reads-before-writes) on plain ints."""
    state = dict(enumerate(counters))
    events = ([(blk * 2, "r", i, slot, False)
               for i, (blk, slot) in enumerate(reads)]
              + [(blk * 2 + 1, "w", i, slot, taken)
                 for i, (blk, slot, taken) in enumerate(writes)])
    events.sort(key=lambda e: e[0])
    out = [None] * len(reads)
    for _, kind, i, slot, taken in events:
        if kind == "r":
            out[i] = state[slot] >= 2
        elif taken:
            state[slot] = min(3, state[slot] + 1)
        else:
            state[slot] = max(0, state[slot] - 1)
    return out, state


def test_scan_counters_matches_scalar_replay():
    rng = np.random.default_rng(7)
    n_slots, n_blocks = 40, 300
    counters = rng.integers(0, 4, size=n_slots).astype(np.int64)
    read_blocks = np.sort(rng.integers(0, n_blocks, size=500))
    read_slots = rng.integers(0, n_slots, size=500)
    write_blocks = np.sort(rng.integers(0, n_blocks, size=400))
    write_slots = rng.integers(0, n_slots, size=400)
    write_taken = rng.random(size=400) < 0.6

    taken, final_slots, final_states = scan_counters(
        counters, read_blocks.astype(np.int64),
        read_slots.astype(np.int64), write_blocks.astype(np.int64),
        write_slots.astype(np.int64), write_taken)

    expect_reads, expect_state = _scalar_counter_replay(
        counters,
        list(zip(read_blocks.tolist(), read_slots.tolist())),
        list(zip(write_blocks.tolist(), write_slots.tolist(),
                 write_taken.tolist())))
    assert taken.tolist() == expect_reads
    for slot, state in zip(final_slots.tolist(), final_states.tolist()):
        assert expect_state[slot] == state


def test_scan_counters_empty():
    taken, slots, states = scan_counters(
        np.zeros(4, dtype=np.int64), *[np.zeros(0, dtype=np.int64)] * 4,
        np.zeros(0, dtype=bool))
    assert len(taken) == 0 and len(slots) == 0 and len(states) == 0


# ----------------------------------------------------------------------
# Batched walks
# ----------------------------------------------------------------------

class _MatrixPHT:
    """Fake blocked PHT answering from a boolean prediction matrix."""

    def __init__(self, width, row_preds):
        self.block_width = width
        self._preds = row_preds

    def position(self, pc):
        return pc % self.block_width

    def predicts_taken(self, base, position):
        return bool(self._preds[position])


def test_resolve_walks_matches_walk_block():
    rng = np.random.default_rng(11)
    width = 8
    window = rng.integers(0, 8, size=(200, width)).astype(np.uint8)
    # Bias in plain codes so fall-through and RAS paths both occur.
    window[rng.random(window.shape) < 0.5] = CODE_NONBRANCH
    pred_mat = rng.random(window.shape) < 0.5

    walks = resolve_walks(window, width, pred_mat)
    for b in range(len(window)):
        pht = _MatrixPHT(width, pred_mat[b])
        scalar = walk_block([int(c) for c in window[b]], 0, width, pht, 0)
        off = None if walks.exit_off[b] < 0 else int(walks.exit_off[b])
        near = None if walks.near[b] < 0 else int(walks.near[b])
        assert (scalar.exit_offset, scalar.source) == (off,
                                                       int(walks.src[b]))
        assert (scalar.near_code is None) == (near is None)
        if near is not None:
            assert int(scalar.near_code) == near
        n_nt = sum(1 for o in scalar.outcomes if not o)
        ends = bool(scalar.outcomes) and scalar.outcomes[-1]
        assert n_nt == int(walks.n_not_taken[b])
        assert ends == bool(walks.ends_taken[b])
        assert int(walks.sel[b]) == encode_selector(
            width, scalar.source, scalar.exit_offset,
            None if scalar.near_code is None else int(scalar.near_code))
        assert int(walks.pay[b]) == n_nt * 2 + ends


# ----------------------------------------------------------------------
# Bank-conflict pairs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("geometry", GEOMETRIES,
                         ids=["normal", "extend", "align"])
def test_pair_conflicts_matches_blocks_conflict(geometry):
    fetch_input = load_fetch_input("go", geometry, BUDGET)
    compiled = compile_fetch_input(fetch_input, near_block=False)
    fast = pair_conflicts(compiled, geometry)
    blocks = fetch_input.blocks
    for j in range(blocks.n_blocks - 1):
        expect = blocks_conflict(
            geometry,
            geometry.lines_for_block(int(blocks.start[j]),
                                     int(blocks.n_instr[j])),
            geometry.lines_for_block(int(blocks.start[j + 1]),
                                     int(blocks.n_instr[j + 1])))
        assert bool(fast[j]) == expect, f"pair {j}"


# ----------------------------------------------------------------------
# Compilation cache
# ----------------------------------------------------------------------

def test_compile_is_memoised_per_input():
    geometry = CacheGeometry.normal(8)
    fetch_input = load_fetch_input("compress", geometry, BUDGET)
    a = compile_fetch_input(fetch_input, near_block=False)
    b = compile_fetch_input(fetch_input, near_block=False)
    assert a is b
    near = compile_fetch_input(fetch_input, near_block=True)
    assert near is not a


def test_compiled_arrays_roundtrip_through_disk_cache():
    from repro.runtime import cache as disk_cache

    geometry = CacheGeometry.extended(8)
    fetch_input = load_fetch_input("li", geometry, BUDGET)
    assert getattr(fetch_input, "cache_key", None) is not None
    name, budget, digest = fetch_input.cache_key
    compiled = compile_fetch_input(fetch_input, near_block=False)

    data = disk_cache.load_compiled(name, budget, geometry, False, digest,
                                    fetch_input.trace.n_records)
    assert data is not None
    loaded = CompiledBlocks.from_arrays(data, near_block=False)
    for field in vars(compiled):
        original = getattr(compiled, field)
        restored = getattr(loaded, field)
        if isinstance(original, np.ndarray):
            assert np.array_equal(original, restored), field
        else:
            assert original == restored, field


def test_compiled_cache_invalidates_on_record_count():
    from repro.runtime import cache as disk_cache

    geometry = CacheGeometry.extended(8)
    fetch_input = load_fetch_input("li", geometry, BUDGET)
    name, budget, digest = fetch_input.cache_key
    compile_fetch_input(fetch_input, near_block=False)
    stale = disk_cache.load_compiled(name, budget, geometry, False, digest,
                                     fetch_input.trace.n_records + 1)
    assert stale is None
