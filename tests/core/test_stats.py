"""FetchStats bookkeeping and derived-metric edge cases."""

import pytest

from repro.core import FetchStats, PenaltyKind


class TestCharging:
    def test_charge_accumulates(self):
        stats = FetchStats()
        stats.charge(PenaltyKind.COND, 5)
        stats.charge(PenaltyKind.COND, 6)
        assert stats.event_counts[PenaltyKind.COND] == 2
        assert stats.event_cycles[PenaltyKind.COND] == 11

    def test_zero_cycle_events_counted(self):
        stats = FetchStats()
        stats.charge(PenaltyKind.BANK_CONFLICT, 0)
        assert stats.event_counts[PenaltyKind.BANK_CONFLICT] == 1
        assert stats.penalty_cycles == 0


class TestDerivedMetrics:
    def test_empty_stats_are_zero(self):
        stats = FetchStats()
        assert stats.ipc_f == 0.0
        assert stats.bep == 0.0
        assert stats.ipb == 0.0
        assert stats.cond_misprediction_rate == 0.0
        assert stats.bep_share(PenaltyKind.COND) == 0.0
        assert stats.bep_component(PenaltyKind.COND) == 0.0

    def test_ipc_f(self):
        stats = FetchStats(n_instructions=100, base_cycles=10)
        stats.charge(PenaltyKind.COND, 10)
        assert stats.fetch_cycles == 20
        assert stats.ipc_f == pytest.approx(5.0)

    def test_bep_per_branch(self):
        stats = FetchStats(n_branches=50, base_cycles=1)
        stats.charge(PenaltyKind.COND, 5)
        stats.charge(PenaltyKind.RETURN, 5)
        assert stats.bep == pytest.approx(0.2)
        assert stats.bep_component(PenaltyKind.COND) == pytest.approx(0.1)
        assert stats.bep_share(PenaltyKind.COND) == pytest.approx(0.5)

    def test_ipb(self):
        stats = FetchStats(n_instructions=60, n_blocks=10)
        assert stats.ipb == 6.0

    def test_cond_misprediction_rate(self):
        stats = FetchStats(n_cond=100)
        stats.charge(PenaltyKind.COND, 5)
        stats.charge(PenaltyKind.COND, 5)
        assert stats.cond_misprediction_rate == pytest.approx(0.02)


class TestSummary:
    def test_summary_lists_charged_categories(self):
        stats = FetchStats(n_instructions=10, n_blocks=2, n_branches=4,
                           base_cycles=2)
        stats.charge(PenaltyKind.MISSELECT, 1)
        text = stats.summary()
        assert "misselect" in text
        assert "IPC_f" in text
        assert "mispredict" not in text  # never charged -> not listed

    def test_summary_handles_empty(self):
        assert "IPB" in FetchStats().summary()
