"""Issue-buffer model and fetch-timeline recording."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DualBlockEngine, EngineConfig
from repro.icache import CacheGeometry
from repro.metrics import simulate_issue
from repro.workloads import load_fetch_input

GEO = CacheGeometry.self_aligned(8)


class TestSimulateIssue:
    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_issue([1], issue_width=0)
        with pytest.raises(ValueError):
            simulate_issue([1], buffer_capacity=0)

    def test_steady_feed_saturates_issue(self):
        result = simulate_issue([16] * 100, issue_width=8,
                                buffer_capacity=32)
        assert result.issue_ipc == pytest.approx(8.0, rel=0.05)

    def test_all_instructions_eventually_issue(self):
        timeline = [5, 0, 12, 3, 0, 0, 16]
        result = simulate_issue(timeline, issue_width=4)
        assert result.instructions == sum(timeline)

    def test_starvation_counted(self):
        result = simulate_issue([8, 0, 0, 0, 8], issue_width=8)
        assert result.starved_cycles >= 3

    def test_wider_issue_never_slower(self):
        timeline = [7, 0, 13, 2, 9, 0, 16, 1] * 20
        narrow = simulate_issue(timeline, issue_width=4)
        wide = simulate_issue(timeline, issue_width=8)
        assert wide.cycles <= narrow.cycles

    def test_small_buffer_throttles_fetch(self):
        result = simulate_issue([16] * 50, issue_width=4,
                                buffer_capacity=8)
        assert result.full_cycles > 0
        assert result.instructions == 16 * 50


@settings(max_examples=30, deadline=None)
@given(timeline=st.lists(st.integers(0, 16), max_size=60),
       width=st.integers(1, 16), capacity=st.integers(1, 64))
def test_issue_conservation(timeline, width, capacity):
    result = simulate_issue(timeline, issue_width=width,
                            buffer_capacity=capacity)
    assert result.instructions == sum(timeline)
    assert result.issue_ipc <= width
    assert result.cycles >= len(timeline) or sum(timeline) == 0


class TestTimelineRecording:
    @pytest.fixture(scope="class")
    def recorded(self):
        fi = load_fetch_input("swim", GEO, 40_000)
        stats = DualBlockEngine(EngineConfig(
            geometry=GEO, n_select_tables=8)).run(fi, record_timeline=True)
        return stats

    def test_disabled_by_default(self):
        fi = load_fetch_input("swim", GEO, 40_000)
        stats = DualBlockEngine(EngineConfig(geometry=GEO)).run(fi)
        assert stats.timeline is None

    def test_timeline_conserves_instructions(self, recorded):
        assert sum(recorded.timeline) == recorded.n_instructions

    def test_timeline_length_is_fetch_cycles(self, recorded):
        assert len(recorded.timeline) == recorded.fetch_cycles

    def test_deliveries_bounded_by_two_blocks(self, recorded):
        assert max(recorded.timeline) <= 2 * GEO.block_width

    def test_paper_claim_eight_issue_absorbs_two_blocks(self, recorded):
        """Section 4: with a raw two-block rate above 8, an 8-issue unit
        'will usually receive, and average close to, 8 instructions per
        request'."""
        assert recorded.ipc_f > 8  # raw fetch rate exceeds issue width
        result = simulate_issue(recorded.timeline, issue_width=8,
                                buffer_capacity=32)
        assert result.issue_ipc > 7.2
