#!/usr/bin/env python
"""Quickstart: fetch a SPEC95-analog workload with dual-block prediction.

Runs the paper's headline configuration — block width 8, self-aligned
instruction cache, dual-block single-selection prediction with 8 select
tables and a 10-bit global history — over one workload and prints the
fetch statistics, then contrasts it with single-block fetching.

Usage::

    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro.core import DualBlockEngine, EngineConfig, SingleBlockEngine
from repro.icache import CacheGeometry
from repro.workloads import SPEC95, load_fetch_input


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "compress"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    if workload not in SPEC95:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"pick one of: {', '.join(SPEC95)}")

    geometry = CacheGeometry.self_aligned(8)
    config = EngineConfig(geometry=geometry, history_length=10,
                          n_select_tables=8)
    fetch_input = load_fetch_input(workload, geometry, budget)

    print(f"workload: {workload} ({budget} instructions, "
          f"{fetch_input.blocks.n_blocks} fetch blocks, "
          f"IPB {fetch_input.blocks.ipb:.2f})")

    print("\n-- single-block fetching (Section 2) --")
    single = SingleBlockEngine(config).run(fetch_input)
    print(single.summary())

    print("\n-- dual-block fetching, single selection (Section 3) --")
    dual = DualBlockEngine(config).run(fetch_input)
    print(dual.summary())

    speedup = dual.ipc_f / single.ipc_f if single.ipc_f else 0.0
    print(f"\ndual-block speedup: {speedup:.2f}x "
          f"({single.ipc_f:.2f} -> {dual.ipc_f:.2f} IPC_f)")


if __name__ == "__main__":
    main()
