#!/usr/bin/env python
"""Bring your own workload: write a program, trace it, predict it.

Shows the full pipeline on a user-authored program instead of the bundled
SPEC95 analogs:

1. build a program with the structured builder DSL (a binary-search-heavy
   "database" loop — deliberately branch-hostile);
2. execute it on the interpreter to capture its control-flow trace;
3. compare scalar vs blocked direction prediction on that trace;
4. run the dual-block fetch engine and print the penalty breakdown.
"""

from repro.core import DualBlockEngine, EngineConfig, FetchInput
from repro.cpu import Machine
from repro.icache import CacheGeometry
from repro.isa import ProgramBuilder
from repro.predictors import (
    BlockedPHT,
    ScalarPHT,
    evaluate_blocked_direction,
    evaluate_scalar_direction,
)
from repro.trace import trace_stats


def build_program():
    """A sorted-table binary-search loop over pseudo-random probes."""
    b = ProgramBuilder(name="bsearch-demo", data_size=1 << 13)
    table, table_len = 0, 512

    with b.function("main"):
        # Fill table[i] = 3*i (sorted), seed the PRNG.
        b.asm.li("r20", 12345)
        with b.for_range("r3", 0, table_len):
            b.asm.muli("r4", "r3", 3)
            b.asm.li("r5", table)
            b.asm.add("r5", "r5", "r3")
            b.asm.st("r4", "r5", 0)
        # Probe loop: binary search a pseudo-random key each iteration.
        with b.for_range("r3", 0, 5_000):
            b.lcg_step("r20")
            b.asm.srli("r6", "r20", 11)
            b.asm.andi("r6", "r6", 2047)     # key in [0, 2048)
            b.asm.li("r7", 0)                # lo
            b.asm.li("r8", table_len)        # hi
            with b.while_("lt", "r7", "r8"):
                b.asm.add("r9", "r7", "r8")
                b.asm.srli("r9", "r9", 1)    # mid
                b.asm.li("r10", table)
                b.asm.add("r10", "r10", "r9")
                b.asm.ld("r11", "r10", 0)
                with b.if_else("lt", "r11", "r6") as branch:
                    b.asm.addi("r7", "r9", 1)
                    branch.otherwise()
                    b.asm.mv("r8", "r9")
    return b.build()


def main() -> None:
    program = build_program()
    print(f"program: {program.name}, {len(program)} instructions")

    trace = Machine(program).run(max_instructions=400_000).trace
    print(trace_stats(trace))

    geometry = CacheGeometry.normal(8)
    fetch_input = FetchInput.from_trace(trace, program.static_code(),
                                        geometry)

    print("\n-- direction accuracy (10-bit history) --")
    scalar = evaluate_scalar_direction(
        trace, ScalarPHT(history_length=10, n_tables=8))
    blocked = evaluate_blocked_direction(
        fetch_input.blocks, BlockedPHT(history_length=10, block_width=8))
    print(f"scalar two-level : {100 * scalar.accuracy:.2f}% "
          f"({scalar.mispredicts}/{scalar.n_cond} missed)")
    print(f"blocked PHT      : {100 * blocked.accuracy:.2f}% "
          f"({blocked.mispredicts}/{blocked.n_cond} missed)")
    print("(binary search is branch-hostile: every comparison is "
          "data-dependent)")

    print("\n-- dual-block fetch engine --")
    stats = DualBlockEngine(EngineConfig(geometry=geometry,
                                         n_select_tables=8)).run(fetch_input)
    print(stats.summary())


if __name__ == "__main__":
    main()
