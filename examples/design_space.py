#!/usr/bin/env python
"""Design-space exploration for a fetch-unit configuration.

Sweeps the knobs a fetch-unit architect controls — history length, select
tables, target-array type/size, near-block encoding, cache organisation —
over a chosen workload suite, and prints IPC_f next to the Section 5
storage cost of each point, i.e. the performance-per-bit view the paper's
cost section motivates.

Usage::

    python examples/design_space.py [int|fp] [instructions]
"""

import sys

from repro.core import DualBlockEngine, EngineConfig
from repro.cost import CostConfig, dual_block_single_select_cost
from repro.experiments import format_table, run_suite
from repro.icache import CacheGeometry


def sweep(suite: str, budget: int):
    rows = []
    for history in (8, 10, 12):
        for n_st in (1, 8):
            for cache_name, factory in (("normal", CacheGeometry.normal),
                                        ("align",
                                         CacheGeometry.self_aligned)):
                geometry = factory(8)
                config = EngineConfig(geometry=geometry,
                                      history_length=history,
                                      n_select_tables=n_st)
                agg = run_suite(suite, config, budget,
                                engine_factory=DualBlockEngine)
                cost = dual_block_single_select_cost(CostConfig(
                    history_length=history, n_select_tables=n_st))
                rows.append((history, n_st, cache_name, agg.ipc_f, agg.bep,
                             cost.total_kbits))
    return rows


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "int"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000
    if suite not in ("int", "fp"):
        raise SystemExit("suite must be 'int' or 'fp'")

    print(f"design space over SPEC{suite}95 analogs "
          f"({budget} instructions each)\n")
    rows = sweep(suite, budget)
    table = [[str(h), str(n_st), cache, f"{ipc:.2f}", f"{bep:.3f}",
              f"{kbits:.0f}", f"{1000 * ipc / kbits:.1f}"]
             for h, n_st, cache, ipc, bep, kbits in rows]
    print(format_table(
        ["hist", "#ST", "cache", "IPC_f", "BEP", "Kbits",
         "IPC/Mbit"], table))

    best = max(rows, key=lambda r: r[3])
    cheapest_good = min((r for r in rows if r[3] > 0.95 * best[3]),
                        key=lambda r: r[5])
    print(f"\nbest IPC_f     : h={best[0]}, {best[1]} STs, {best[2]} cache "
          f"-> {best[3]:.2f} IPC_f at {best[5]:.0f} Kbits")
    print(f"95% for less   : h={cheapest_good[0]}, {cheapest_good[1]} STs, "
          f"{cheapest_good[2]} cache -> {cheapest_good[3]:.2f} IPC_f at "
          f"{cheapest_good[5]:.0f} Kbits")


if __name__ == "__main__":
    main()
