#!/usr/bin/env python
"""Why interpreters are hard to fetch: the ``li`` analog under the lens.

The intro of the paper motivates high-bandwidth fetching with
general-purpose codes whose basic blocks are small.  Interpreters are the
extreme case: every bytecode ends in an indirect jump whose target changes
constantly, defeating last-target prediction.  This example dissects the
``li`` (Lisp interpreter) analog:

* the trace's control-flow mix (heavy ``indirect`` share);
* how the indirect misfetch penalty dominates its BEP;
* how it compares with a loop-dominated workload (``mgrid``).
"""

from repro.core import DualBlockEngine, EngineConfig, PenaltyKind
from repro.icache import CacheGeometry
from repro.trace import trace_stats
from repro.workloads import load_fetch_input, load_trace

BUDGET = 120_000


def dissect(name: str, config: EngineConfig):
    trace = load_trace(name, BUDGET)
    print(f"== {name} ==")
    print(trace_stats(trace))
    fetch_input = load_fetch_input(name, config.geometry, BUDGET)
    stats = DualBlockEngine(config).run(fetch_input)
    print(f"IPC_f {stats.ipc_f:.2f}, BEP {stats.bep:.3f}")
    for kind in (PenaltyKind.MISFETCH_INDIRECT, PenaltyKind.COND,
                 PenaltyKind.MISSELECT):
        share = stats.bep_share(kind)
        print(f"  {kind.value:<18s} {100 * share:5.1f}% of BEP")
    print()
    return stats


def main() -> None:
    config = EngineConfig(geometry=CacheGeometry.self_aligned(8),
                          n_select_tables=8)
    li = dissect("li", config)
    mgrid = dissect("mgrid", config)

    print("takeaway:")
    print(f"  li spends {100 * li.bep_share(PenaltyKind.MISFETCH_INDIRECT):.0f}% "
          "of its penalty cycles on indirect misfetches — the dispatch "
          "jump's target changes with every bytecode, so a last-target "
          "array keeps missing;")
    print(f"  mgrid (counted loops) reaches {mgrid.ipc_f:.1f} IPC_f vs "
          f"li's {li.ipc_f:.1f} under the identical fetch mechanism.")


if __name__ == "__main__":
    main()
