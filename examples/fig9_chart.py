#!/usr/bin/env python
"""Render Figure 9 as a textual stacked-bar chart.

Regenerates the paper's per-program BEP breakdown (two-block single
selection, self-aligned cache, 8 STs, 10-bit GHR) and draws each program
as a horizontal bar segmented by penalty category, mirroring the figure's
stacking order.

Usage::

    python examples/fig9_chart.py [instructions]
"""

import sys

from repro.experiments import STACK_ORDER, run_fig9

#: One letter per category, in stacking order (legend printed below).
GLYPHS = {kind: glyph for kind, glyph in zip(STACK_ORDER, "mStifrb")}

WIDTH = 60  # characters for the largest bar


def render(rows) -> str:
    peak = max(row.bep for row in rows) or 1.0
    lines = []
    for row in rows:
        cells = []
        for kind in STACK_ORDER:
            n = round(row.components[kind] / peak * WIDTH)
            cells.append(GLYPHS[kind] * n)
        bar = "".join(cells)[:WIDTH]
        lines.append(f"{row.program:>9s} [{row.suite}] "
                     f"{row.bep:5.3f} |{bar}")
    return "\n".join(lines)


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    rows = run_fig9(budget=budget)
    print("Figure 9 — branch execution penalties, two-block single "
          "selection\n")
    print(render(rows))
    print("\nlegend: " + "  ".join(
        f"{GLYPHS[kind]}={kind.value}" for kind in STACK_ORDER))


if __name__ == "__main__":
    main()
