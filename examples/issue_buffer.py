#!/usr/bin/env python
"""Feeding an N-issue core: the fetch/issue interaction of Section 4.

The paper argues that when the raw two-block fetch rate exceeds the issue
width, a small buffer lets the issue unit "receive, and average close to,
8 instructions per request".  This example records a per-cycle delivery
timeline from the dual-block engine and drains it through issue buffers
of several widths, for one predictable and one branchy workload.

Usage::

    python examples/issue_buffer.py [instructions]
"""

import sys

from repro.core import DualBlockEngine, EngineConfig
from repro.experiments import format_table
from repro.icache import CacheGeometry
from repro.metrics import simulate_issue
from repro.workloads import load_fetch_input


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    geometry = CacheGeometry.self_aligned(8)
    config = EngineConfig(geometry=geometry, n_select_tables=8)

    rows = []
    for name in ("swim", "mgrid", "compress", "gcc"):
        fi = load_fetch_input(name, geometry, budget)
        stats = DualBlockEngine(config).run(fi, record_timeline=True)
        for width in (4, 8, 16):
            result = simulate_issue(stats.timeline, issue_width=width,
                                    buffer_capacity=4 * width)
            rows.append([name, f"{stats.ipc_f:.2f}", str(width),
                         f"{result.issue_ipc:.2f}",
                         f"{100 * result.starvation_rate:.0f}%"])

    print("dual-block fetch feeding an N-issue core "
          "(self-aligned cache, 8 STs)\n")
    print(format_table(
        ["workload", "raw IPC_f", "issue width", "issued IPC",
         "starved cycles"], rows))
    print("\nreading: when raw IPC_f > width, the buffer keeps the core "
          "near its full width\n(the paper's 8-issue argument); branchy "
          "codes starve the core no matter the width.")


if __name__ == "__main__":
    main()
